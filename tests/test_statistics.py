"""Instance descriptive statistics."""

import pytest

from repro.instances.tpcc import tpcc_instance
from repro.model.statistics import describe_instance


def test_tiny_instance_counts(tiny_instance):
    stats = describe_instance(tiny_instance)
    assert stats.num_tables == 2
    assert stats.num_attributes == 5
    assert stats.num_transactions == 2
    assert stats.num_queries == 4
    assert stats.num_read_queries == 3
    assert stats.num_write_queries == 1
    assert stats.update_fraction == pytest.approx(0.25)
    assert stats.total_row_width == pytest.approx(316.0)
    assert stats.mean_attributes_per_table == pytest.approx(2.5)
    assert stats.mean_queries_per_transaction == pytest.approx(2.0)


def test_as_dict_keys(tiny_instance):
    payload = describe_instance(tiny_instance).as_dict()
    for key in ("name", "tables", "|A|", "|T|", "queries", "update %"):
        assert key in payload
    assert payload["update %"] == 25.0


def test_tpcc_statistics():
    stats = describe_instance(tpcc_instance())
    assert stats.num_attributes == 92
    assert stats.num_tables == 9
    # The Section-5.2 UPDATE splitting yields a substantial write share.
    assert 0.2 < stats.update_fraction < 0.5
