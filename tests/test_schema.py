"""Unit tests for the schema model."""

import pytest

from repro.exceptions import SchemaError
from repro.model.schema import Attribute, Schema, SchemaBuilder, Table


class TestAttribute:
    def test_qualified_name(self):
        attribute = Attribute("Users", "name", 16)
        assert attribute.qualified_name == "Users.name"
        assert str(attribute) == "Users.name"

    def test_rejects_non_positive_width(self):
        with pytest.raises(SchemaError, match="positive width"):
            Attribute("Users", "name", 0)
        with pytest.raises(SchemaError, match="positive width"):
            Attribute("Users", "name", -4)

    def test_rejects_empty_names(self):
        with pytest.raises(SchemaError):
            Attribute("Users", "", 4)
        with pytest.raises(SchemaError):
            Attribute("", "name", 4)

    def test_fractional_width_allowed(self):
        assert Attribute("T", "avg", 2.5).width == 2.5


class TestTable:
    def test_row_width_sums_attribute_widths(self):
        table = Table(
            "T",
            (Attribute("T", "a", 4), Attribute("T", "b", 8), Attribute("T", "c", 1)),
        )
        assert table.row_width == 13

    def test_rejects_duplicate_attributes(self):
        with pytest.raises(SchemaError, match="duplicate attribute"):
            Table("T", (Attribute("T", "a", 4), Attribute("T", "a", 8)))

    def test_rejects_foreign_attribute(self):
        with pytest.raises(SchemaError, match="does not belong"):
            Table("T", (Attribute("Other", "a", 4),))

    def test_rejects_empty_table(self):
        with pytest.raises(SchemaError, match="at least one attribute"):
            Table("T", ())

    def test_attribute_lookup(self):
        table = Table("T", (Attribute("T", "a", 4),))
        assert table.attribute("a").width == 4
        with pytest.raises(SchemaError, match="no attribute"):
            table.attribute("missing")

    def test_iteration_and_len(self):
        table = Table("T", (Attribute("T", "a", 4), Attribute("T", "b", 8)))
        assert len(table) == 2
        assert [a.name for a in table] == ["a", "b"]


class TestSchema:
    def test_canonical_attribute_order_follows_tables(self):
        schema = (
            SchemaBuilder().table("A", x=1, y=2).table("B", z=3).build()
        )
        assert [a.qualified_name for a in schema.attributes] == [
            "A.x", "A.y", "B.z",
        ]

    def test_rejects_duplicate_tables(self):
        with pytest.raises(SchemaError, match="duplicate table"):
            Schema(
                [
                    Table("T", (Attribute("T", "a", 4),)),
                    Table("T", (Attribute("T", "b", 4),)),
                ]
            )

    def test_rejects_empty_schema(self):
        with pytest.raises(SchemaError, match="at least one table"):
            Schema([])

    def test_attribute_lookup_by_qualified_name(self):
        schema = SchemaBuilder().table("T", a=4).build()
        assert schema.attribute("T.a").width == 4
        assert schema.has_attribute("T.a")
        assert not schema.has_attribute("T.b")
        with pytest.raises(SchemaError, match="no attribute"):
            schema.attribute("T.b")

    def test_table_lookup(self):
        schema = SchemaBuilder().table("T", a=4).build()
        assert schema.table("T").name == "T"
        with pytest.raises(SchemaError, match="no table"):
            schema.table("Missing")

    def test_resolve_unqualified_unique(self):
        schema = SchemaBuilder().table("A", x=1).table("B", y=2).build()
        assert schema.resolve("x").qualified_name == "A.x"

    def test_resolve_unqualified_ambiguous(self):
        schema = SchemaBuilder().table("A", x=1).table("B", x=2).build()
        with pytest.raises(SchemaError, match="ambiguous"):
            schema.resolve("x")
        # Restricting the table set disambiguates.
        assert schema.resolve("x", tables=["B"]).qualified_name == "B.x"

    def test_resolve_unknown(self):
        schema = SchemaBuilder().table("A", x=1).build()
        with pytest.raises(SchemaError, match="no table contains"):
            schema.resolve("zz")

    def test_total_width(self):
        schema = SchemaBuilder().table("A", x=1, y=2).table("B", z=3).build()
        assert schema.total_width == 6


class TestSchemaBuilder:
    def test_builds_in_order(self):
        schema = SchemaBuilder("db").table("T1", a=4).table("T2", b=8).build()
        assert schema.name == "db"
        assert schema.table_names == ("T1", "T2")

    def test_table_from_widths(self):
        schema = (
            SchemaBuilder().table_from_widths("T", {"a0": 4.0, "a1": 8.0}).build()
        )
        assert schema.table("T").row_width == 12

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            SchemaBuilder().table("T")
