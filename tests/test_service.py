"""Async advisor service: coalescing, admission control, shedding, wire.

The load-bearing test is the **determinism contract**
(:class:`TestCoalescingDeterminism`): with shedding disabled, a
concurrent batch through :class:`~repro.service.AsyncAdvisor` — however
many duplicates it carries — yields reports bitwise identical to a
sequential ``advisor.advise`` loop over the *deduplicated* request
sequence in admission order, including the per-request ``cache_stats``
deltas.  Concurrency buys coalescing and backpressure, never different
arithmetic.

Queue pressure is built deterministically by submitting *before*
:meth:`~repro.service.AsyncAdvisor.start`: entries queue up, so the
k-th submission is admitted at depth k.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import Advisor, SolveRequest
from repro.costmodel.coefficients import CoefficientCache
from repro.exceptions import OptionsError, RejectedError, TransportError
from repro.service import (
    AsyncAdvisor,
    ServerThread,
    ServiceClient,
    ServiceConfig,
    SheddingPolicy,
    strategy_rank,
)
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.shedding import LEVEL_HARD, LEVEL_LIGHT, LEVEL_NONE
from repro.service.wire import (
    REPORT_FORMAT_VERSION,
    report_from_wire,
    report_to_wire,
)
from tests.conftest import small_random_instance

SA_OPTIONS = {"inner_loops": 4, "max_outer_loops": 8, "patience": 3}


def sa_request(instance, seed: int = 1, **changes) -> SolveRequest:
    base = SolveRequest(
        instance=instance,
        num_sites=2,
        strategy="sa",
        options=dict(SA_OPTIONS),
        seed=seed,
    )
    return base.with_(**changes) if changes else base


def run_service(requests, config=None, *, clock=None, clients=None):
    """Submit all requests concurrently (enqueued before the worker
    starts); returns (reports, stats)."""

    async def main():
        kwargs = {} if clock is None else {"clock": clock}
        service = AsyncAdvisor(config=config, **kwargs)
        names = clients or ["default"] * len(requests)
        tasks = [
            asyncio.ensure_future(service.submit(request, client=name))
            for request, name in zip(requests, names)
        ]
        for _ in range(3 * len(requests)):
            await asyncio.sleep(0)
        async with service:
            reports = await asyncio.gather(*tasks, return_exceptions=True)
        return reports, service

    return asyncio.run(main())


def assert_bitwise_equal(report, reference):
    assert np.array_equal(report.result.x, reference.result.x)
    assert np.array_equal(report.result.y, reference.result.y)
    assert report.result.objective == reference.result.objective
    assert report.strategy == reference.strategy
    assert report.cache_stats == reference.cache_stats


# ----------------------------------------------------------------------
# the determinism contract
# ----------------------------------------------------------------------
class TestCoalescingDeterminism:
    def test_identical_requests_share_one_report(self):
        instance = small_random_instance(11)
        requests = [sa_request(instance, seed=1)] * 6
        reports, service = run_service(requests)
        first = reports[0]
        assert all(report is first for report in reports)
        assert service.advisor.requests_served == 1
        assert (
            service.counters["coalesced"]
            + service.counters["result_cache_hits"]
            == 5
        )

    def test_batch_matches_sequential_dedup_loop(self):
        """N identical + near-identical (seed-differing) concurrent
        requests == a sequential advise loop over the deduplicated
        sequence, cache_stats bookkeeping included."""
        instance = small_random_instance(12)
        unique = [sa_request(instance, seed=seed) for seed in (1, 2, 3)]
        # Interleave duplicates: admission order of first occurrences
        # is unique[0], unique[1], unique[2].
        batch = [
            unique[0], unique[0], unique[1], unique[0],
            unique[1], unique[2], unique[2],
        ]
        reports, service = run_service(batch)
        sequential = Advisor()
        references = [sequential.advise(request) for request in unique]
        by_key = {
            request.canonical_key(): reference
            for request, reference in zip(unique, references)
        }
        for request, report in zip(batch, reports):
            assert_bitwise_equal(report, by_key[request.canonical_key()])
        assert service.advisor.requests_served == len(unique)
        assert sequential.requests_served == len(unique)

    def test_submissions_after_completion_hit_result_cache(self):
        instance = small_random_instance(13)
        request = sa_request(instance, seed=4)

        async def main():
            async with AsyncAdvisor() as service:
                first = await service.submit(request)
                second = await service.submit(request)
                return first, second, service

        first, second, service = asyncio.run(main())
        assert second is first
        assert service.counters["result_cache_hits"] == 1
        assert service.advisor.requests_served == 1

    def test_result_cache_evicts_lru(self):
        instance = small_random_instance(14)
        config = ServiceConfig(result_cache_capacity=1)
        requests = [sa_request(instance, seed=seed) for seed in (1, 2)]

        async def main():
            async with AsyncAdvisor(config=config) as service:
                await service.submit(requests[0])
                await service.submit(requests[1])  # evicts seed 1
                again = await service.submit(requests[0])  # re-solved
                return again, service

        again, service = asyncio.run(main())
        assert service.counters["result_cache_evictions"] >= 1
        assert service.advisor.requests_served == 3
        reference = Advisor().advise(requests[0])
        assert np.array_equal(again.result.x, reference.result.x)
        assert again.result.objective == reference.result.objective


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_queue_full_rejects_with_structured_reason(self):
        instance = small_random_instance(15)
        config = ServiceConfig(max_pending=2)
        requests = [sa_request(instance, seed=seed) for seed in range(4)]
        reports, service = run_service(requests, config)
        rejected = [r for r in reports if isinstance(r, RejectedError)]
        served = [r for r in reports if not isinstance(r, Exception)]
        assert len(rejected) == 2 and len(served) == 2
        assert all(r.reason == "queue-full" for r in rejected)
        assert service.counters["rejected_queue_full"] == 2
        # Never silent: every submission was answered one way or the
        # other.
        assert service.counters["received"] == 4

    def test_rate_limit_rejects_with_retry_after(self):
        instance = small_random_instance(16)
        config = ServiceConfig(rate_limit=1.0, rate_burst=2)
        clock = FakeClock()
        requests = [sa_request(instance, seed=seed) for seed in range(3)]
        reports, service = run_service(
            requests, config, clock=clock, clients=["a", "a", "a"]
        )
        rejected = [r for r in reports if isinstance(r, RejectedError)]
        assert len(rejected) == 1
        assert rejected[0].reason == "rate-limited"
        assert rejected[0].retry_after == pytest.approx(1.0)
        assert service.counters["rejected_rate_limited"] == 1

    def test_rate_limit_is_per_client(self):
        instance = small_random_instance(16)
        config = ServiceConfig(rate_limit=1.0, rate_burst=1)
        clock = FakeClock()
        requests = [sa_request(instance, seed=seed) for seed in range(2)]
        reports, _ = run_service(
            requests, config, clock=clock, clients=["a", "b"]
        )
        assert not any(isinstance(r, Exception) for r in reports)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, now=clock())
        assert bucket.try_acquire(clock()) == 0.0
        assert bucket.try_acquire(clock()) == 0.0
        retry = bucket.try_acquire(clock())
        assert retry == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.try_acquire(clock()) == 0.0

    def test_limiter_forgets_lru_clients_harmlessly(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, 1, max_clients=2, clock=clock)
        assert limiter.admit("a") == 0.0
        assert limiter.admit("b") == 0.0
        assert limiter.admit("c") == 0.0  # evicts a
        assert len(limiter) == 2
        # a comes back with a fresh (full) bucket: never spuriously
        # rejected, the bound only forgets refill debt.
        assert limiter.admit("a") == 0.0

    def test_zero_rate_disables(self):
        limiter = RateLimiter(0.0, 1, clock=FakeClock())
        assert all(limiter.admit("x") == 0.0 for _ in range(100))
        assert len(limiter) == 0


# ----------------------------------------------------------------------
# load shedding
# ----------------------------------------------------------------------
class TestShedding:
    def policy(self, threshold=2, hard=4) -> SheddingPolicy:
        return SheddingPolicy(
            ServiceConfig(shed_threshold=threshold, shed_hard_threshold=hard)
        )

    def test_strategy_rank_covers_chains(self):
        assert strategy_rank("qp") == 2
        assert strategy_rank("sa-portfolio") == 1
        assert strategy_rank("greedy") == 0
        assert strategy_rank("sa-portfolio->qp") == 2
        assert strategy_rank("somebody-elses-strategy") == 0

    def test_levels(self):
        policy = self.policy(threshold=2, hard=4)
        assert policy.level(0) == LEVEL_NONE
        assert policy.level(1) == LEVEL_NONE
        assert policy.level(2) == LEVEL_LIGHT
        assert policy.level(3) == LEVEL_LIGHT
        assert policy.level(4) == LEVEL_HARD
        disabled = SheddingPolicy(ServiceConfig())
        assert disabled.level(10_000) == LEVEL_NONE

    def test_light_degrades_qp_family_only(self):
        instance = small_random_instance(17)
        policy = self.policy()
        qp = sa_request(instance).with_(strategy="qp", options={})
        degraded, origin = policy.degrade(qp, LEVEL_LIGHT)
        assert degraded.strategy == "sa-portfolio"
        assert origin == "qp"
        sa = sa_request(instance)
        same, origin = policy.degrade(sa, LEVEL_LIGHT)
        assert same is sa and origin is None

    def test_hard_degrades_to_greedy_floor(self):
        instance = small_random_instance(17)
        policy = self.policy()
        sa = sa_request(instance)
        degraded, origin = policy.degrade(sa, LEVEL_HARD)
        assert degraded.strategy == "greedy" and origin == "sa"
        # greedy requires replication; the disjoint floor is one anneal
        # (a disjoint "sa" request is already at its floor).
        disjoint_qp = sa.with_(
            strategy="qp", options={}, allow_replication=False
        )
        degraded, origin = policy.degrade(disjoint_qp, LEVEL_HARD)
        assert degraded.strategy == "sa" and origin == "qp"
        disjoint_sa = sa.with_(allow_replication=False)
        same, origin = policy.degrade(disjoint_sa, LEVEL_HARD)
        assert same is disjoint_sa and origin is None
        baseline = sa.with_(strategy="greedy", options={})
        same, origin = policy.degrade(baseline, LEVEL_HARD)
        assert same is baseline and origin is None

    def test_pressure_degrades_and_records_provenance(self):
        instance = small_random_instance(18)
        config = ServiceConfig(
            max_pending=64, shed_threshold=1, shed_hard_threshold=2
        )
        requests = [sa_request(instance, seed=seed) for seed in range(4)]
        reports, service = run_service(requests, config)
        assert not any(isinstance(r, Exception) for r in reports)
        # Depth 0: served as asked.  Depth >= 2: greedy floor with
        # provenance, answering the *submitted* request.
        assert reports[0].degraded_from is None
        assert reports[0].strategy == "sa"
        for index in (2, 3):
            report = reports[index]
            assert report.degraded_from == "sa"
            assert report.strategy == "greedy"
            assert report.result.metadata["degraded_from"] == "sa"
            assert report.request == requests[index]
        assert service.counters["shed_hard"] == 2

    def test_degraded_reports_never_enter_result_cache(self):
        instance = small_random_instance(18)
        config = ServiceConfig(shed_threshold=1, shed_hard_threshold=1)
        requests = [sa_request(instance, seed=seed) for seed in range(2)]

        async def main():
            service = AsyncAdvisor(config=config)
            tasks = [
                asyncio.ensure_future(service.submit(request))
                for request in requests
            ]
            for _ in range(6):
                await asyncio.sleep(0)
            async with service:
                pressured = await asyncio.gather(*tasks)
                # Same loop, queue now empty: the degraded answer for
                # seed 1 was not cached, so an unpressured resubmission
                # gets the real solve.
                calm = await service.submit(requests[1])
            return pressured, calm

        pressured, calm = asyncio.run(main())
        assert pressured[1].degraded_from == "sa"
        assert calm.degraded_from is None
        assert calm.strategy == "sa"


# ----------------------------------------------------------------------
# bounded caches (satellite)
# ----------------------------------------------------------------------
class TestCoefficientCacheCapacity:
    def test_unbounded_by_default(self, tiny_instance):
        from repro.costmodel.config import CostParameters

        cache = CoefficientCache(tiny_instance)
        for penalty in range(1, 12):
            cache.coefficients(CostParameters(network_penalty=float(penalty)))
        assert cache.evictions == 0
        assert cache.stats() == {
            "hits": 0, "misses": 11, "evictions": 0,
        }

    def test_capacity_evicts_lru(self, tiny_instance):
        from repro.costmodel.config import CostParameters

        cache = CoefficientCache(tiny_instance, capacity=2)
        one = CostParameters(network_penalty=1.0)
        two = CostParameters(network_penalty=2.0)
        three = CostParameters(network_penalty=3.0)
        cache.coefficients(one)
        cache.coefficients(two)
        cache.coefficients(one)      # refresh one; two is now LRU
        cache.coefficients(three)    # evicts two
        assert cache.evictions == 1
        cache.coefficients(one)      # still cached
        assert cache.stats()["hits"] == 2
        cache.coefficients(two)      # must rebuild
        assert cache.stats()["misses"] == 4

    def test_invalid_capacity_rejected(self, tiny_instance):
        with pytest.raises(OptionsError):
            CoefficientCache(tiny_instance, capacity=0)

    def test_advisor_exposes_eviction_stats(self):
        instance = small_random_instance(19)
        advisor = Advisor(coefficient_capacity=1)
        report = advisor.advise(sa_request(instance, seed=1))
        assert set(report.cache_stats) == {
            "coefficient_hits", "coefficient_misses",
            "coefficient_evictions", "linearization_hits",
            "linearization_misses", "linearization_evictions",
        }
        stats = advisor.cache_stats()
        assert stats["coefficient_evictions"] == 0


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert not config.shedding_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"rate_limit": -1.0},
            {"rate_burst": 0},
            {"max_clients": 0},
            {"result_cache_capacity": -1},
            {"shed_threshold": -1},
            {"shed_hard_threshold": 3},  # requires shed_threshold
            {"shed_threshold": 5, "shed_hard_threshold": 2},  # < light
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(OptionsError):
            ServiceConfig(**kwargs)


# ----------------------------------------------------------------------
# the socket front end
# ----------------------------------------------------------------------
class TestSocketService:
    def test_round_trip_matches_in_process_advise(self):
        instance = small_random_instance(21)
        request = sa_request(instance, seed=2)
        with ServerThread() as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                report = client.advise(request)
        reference = Advisor().advise(request)
        assert_bitwise_equal(report, reference)
        assert report.request.to_dict() == request.to_dict()
        # The client-side report is fully functional: feasibility was
        # re-checked on decode, coefficients rebuilt canonically.
        assert report.result.coefficients.num_attributes > 0

    def test_pipelined_duplicates_coalesce_server_side(self):
        instance = small_random_instance(22)
        request = sa_request(instance, seed=3)
        with ServerThread() as server:
            with ServiceClient("127.0.0.1", server.port) as client:
                reports = client.advise_many([request] * 4)
                stats = client.stats()
                client.shutdown()
        assert stats["received"] == 4
        assert stats["served"] == 1
        assert stats["coalesced"] + stats["result_cache_hits"] == 3
        reference = Advisor().advise(request)
        for report in reports:
            assert_bitwise_equal(report, reference)

    def test_rate_limited_rejection_is_structured_on_the_wire(self):
        instance = small_random_instance(23)
        config = ServiceConfig(rate_limit=0.001, rate_burst=1)
        with ServerThread(config=config) as server:
            with ServiceClient(
                "127.0.0.1", server.port, client="tenant"
            ) as client:
                client.advise(sa_request(instance, seed=1))
                with pytest.raises(RejectedError) as caught:
                    client.advise(sa_request(instance, seed=2))
        assert caught.value.reason == "rate-limited"
        assert caught.value.retry_after > 0

    def test_handshake_rejects_wrong_envelope(self):
        from repro.sa.transport.protocol import Endpoint
        import socket as socket_module

        with ServerThread() as server:
            sock = socket_module.create_connection(
                ("127.0.0.1", server.port)
            )
            endpoint = Endpoint(sock)
            endpoint.send(
                "hello", protocol_versions=[1], envelope="restart-task/9"
            )
            answer = endpoint.recv(10.0)
            endpoint.close()
        assert answer["kind"] == "error"
        assert "envelope" in answer["message"]

    def test_handshake_rejects_no_shared_protocol_version(self):
        import socket as socket_module

        from repro.sa.transport.protocol import Endpoint

        with ServerThread() as server:
            sock = socket_module.create_connection(
                ("127.0.0.1", server.port)
            )
            endpoint = Endpoint(sock)
            endpoint.send(
                "hello", protocol_versions=[999],
                envelope="solve-report/1",
            )
            answer = endpoint.recv(10.0)
            endpoint.close()
        assert answer["kind"] == "error"
        assert "protocol version" in answer["message"]


# ----------------------------------------------------------------------
# the report codec
# ----------------------------------------------------------------------
class TestReportCodec:
    def test_round_trip_is_bitwise(self):
        instance = small_random_instance(24)
        request = sa_request(instance, seed=5)
        report = Advisor().advise(request)
        decoded = report_from_wire(report_to_wire(report))
        assert_bitwise_equal(decoded, report)
        assert decoded.request.to_dict() == request.to_dict()
        assert decoded.wall_time == report.wall_time
        assert len(decoded.stage_results) == len(report.stage_results)

    def test_unknown_format_version_refused(self):
        instance = small_random_instance(24)
        payload = report_to_wire(Advisor().advise(sa_request(instance)))
        payload["format_version"] = REPORT_FORMAT_VERSION + 1
        with pytest.raises(TransportError, match="format_version"):
            report_from_wire(payload)
