"""LinExpr/Variable/Constraint algebra."""

import pytest

from repro.exceptions import SolverError
from repro.solver.expr import Constraint, LinExpr, Sense, Variable


@pytest.fixture
def variables():
    return Variable(0, "x"), Variable(1, "y")


class TestVariable:
    def test_bounds_validation(self):
        with pytest.raises(SolverError, match="upper bound"):
            Variable(0, "x", lower=5, upper=1)

    def test_arithmetic_builds_expressions(self, variables):
        x, y = variables
        expr = 2 * x + y - 3
        assert expr.terms == {0: 2.0, 1: 1.0}
        assert expr.constant == -3.0

    def test_negation(self, variables):
        x, _ = variables
        assert (-x).terms == {0: -1.0}

    def test_rsub(self, variables):
        x, _ = variables
        expr = 5 - x
        assert expr.terms == {0: -1.0}
        assert expr.constant == 5.0


class TestLinExpr:
    def test_terms_merge(self, variables):
        x, y = variables
        expr = x + x + y
        assert expr.terms == {0: 2.0, 1: 1.0}

    def test_from_terms_drops_zeros(self, variables):
        x, y = variables
        expr = LinExpr.from_terms([(x, 0.0), (y, 2.0)])
        assert expr.terms == {1: 2.0}

    def test_from_terms_accumulates_duplicates(self, variables):
        x, _ = variables
        expr = LinExpr.from_terms([(x, 1.0), (x, 2.5)])
        assert expr.terms == {0: 3.5}

    def test_scalar_multiplication(self, variables):
        x, y = variables
        expr = (x + 2 * y + 1) * 3
        assert expr.terms == {0: 3.0, 1: 6.0}
        assert expr.constant == 3.0

    def test_multiplying_by_expression_fails(self, variables):
        x, y = variables
        with pytest.raises(SolverError, match="scalar"):
            (x + 1) * (y + 1)  # quadratic terms are not representable

    def test_value_evaluation(self, variables):
        x, y = variables
        expr = 2 * x + 3 * y + 1
        assert expr.value([10, 100]) == 321.0


class TestConstraint:
    def test_normalisation_moves_constants_right(self, variables):
        x, y = variables
        constraint = (x + 2 <= y + 5)
        assert isinstance(constraint, Constraint)
        assert constraint.sense is Sense.LE
        assert constraint.terms == {0: 1.0, 1: -1.0}
        assert constraint.rhs == 3.0

    def test_ge_and_eq(self, variables):
        x, _ = variables
        assert (x >= 2).sense is Sense.GE
        assert (x == 2).sense is Sense.EQ

    def test_violation_le(self, variables):
        x, _ = variables
        constraint = x <= 5
        assert constraint.violation([5.0]) == 0.0
        assert constraint.violation([7.0]) == pytest.approx(2.0, abs=1e-6)

    def test_violation_eq(self, variables):
        x, _ = variables
        constraint = x == 5
        assert constraint.violation([5.0]) == 0.0
        assert constraint.violation([3.0]) == pytest.approx(2.0, abs=1e-6)

    def test_with_name(self, variables):
        x, _ = variables
        assert (x <= 1).with_name("cap").name == "cap"
