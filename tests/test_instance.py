"""Unit tests for ProblemInstance index maps."""

import pytest

from repro.exceptions import WorkloadError
from repro.model.instance import ProblemInstance
from repro.model.schema import SchemaBuilder
from repro.model.workload import Query, Transaction, Workload


@pytest.fixture
def instance():
    schema = SchemaBuilder("s").table("A", x=4, y=8).table("B", z=2).build()
    workload = Workload(
        [
            Transaction("t1", (Query.read("q1", ["A.x"]), Query.write("q2", ["B.z"]))),
            Transaction("t2", (Query.read("q3", ["A.y", "B.z"]),)),
        ]
    )
    return ProblemInstance(schema, workload, name="idx")


def test_sizes(instance):
    assert instance.num_attributes == 3
    assert instance.num_transactions == 2
    assert instance.num_queries == 3


def test_attribute_index_matches_canonical_order(instance):
    assert instance.attribute_index == {"A.x": 0, "A.y": 1, "B.z": 2}


def test_transaction_and_query_indexes(instance):
    assert instance.transaction_index == {"t1": 0, "t2": 1}
    assert instance.query_index == {"q1": 0, "q2": 1, "q3": 2}


def test_query_transaction_ownership(instance):
    assert instance.query_transaction == (0, 0, 1)


def test_table_attributes(instance):
    assert instance.table_attributes == {"A": (0, 1), "B": (2,)}


def test_attribute_widths(instance):
    assert instance.attribute_widths() == [4, 8, 2]


def test_validates_workload_against_schema():
    schema = SchemaBuilder("s").table("A", x=4).build()
    workload = Workload([Transaction("t", (Query.read("q", ["A.missing"]),))])
    with pytest.raises(WorkloadError):
        ProblemInstance(schema, workload)


def test_repr_mentions_sizes(instance):
    assert "|A|=3" in repr(instance)
    assert "idx" in repr(instance)
