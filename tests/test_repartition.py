"""Online re-partitioning: layout carrier, migration term, readvise.

The contracts pinned here:

* :class:`~repro.partition.current_layout.CurrentLayout` validates at
  construction, round-trips through JSON and pickle exactly, and
  rebuilds the ``(|A|, |S|)`` indicator with zero-padding when the
  cluster grew (never when it shrank),
* :class:`~repro.api.request.SolveRequest` validates the layout fields
  at construction and its serialised form is **byte-stable** for
  layout-free requests — legacy payloads, canonical JSON, service
  cache keys and queue envelopes are unchanged by this feature,
* the migration term ``sum c5[a,s] y[a,s]`` enters objective (4), the
  breakdown, the lower bound and the incremental evaluator exactly
  (dense parity to 1e-9, bitwise rollback),
* every strategy that ignores warm starts is **bitwise identical**
  with ``current_layout`` + ``migration_cost=0`` to the layout-free
  solve, and SA's warm start makes the migrated best never lose to the
  deterministic stay-put solution (replicated and disjoint, serial and
  queue backends),
* :meth:`~repro.api.advisor.Advisor.readvise` produces a consistent
  :class:`~repro.api.report.MigrationReport` from every trace form,
* the streaming decayed collector and the estimator edge cases
  (empty trace, zero window, unknown query names) raise
  :class:`~repro.exceptions.WorkloadError`, and re-estimating from a
  trace synthesised at the instance's own statistics reproduces
  ``f_q`` and ``n_{a,q}``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Advisor, SolveRequest
from repro.costmodel.coefficients import attach_migration, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator, objective6_lower_bound
from repro.costmodel.incremental import IncrementalEvaluator
from repro.exceptions import OptionsError, WorkloadError
from repro.partition import CurrentLayout
from repro.sa.annealer import warm_start_solution
from repro.sa.subsolve import SubproblemSolver
from repro.stats import (
    DecayedTraceCollector,
    QueryEvent,
    TraceCollector,
    reestimate_from_statistics,
    reestimate_instance,
)
from repro.stats.estimator import estimate_statistics
from tests.conftest import random_feasible_solution, small_random_instance

SA_OPTIONS = {"inner_loops": 6, "max_outer_loops": 10, "patience": 4}


def layout_for(instance, num_sites: int, seed: int = 0) -> CurrentLayout:
    """A random feasible incumbent layout for ``instance``."""
    coefficients = build_coefficients(instance, CostParameters())
    _, y = random_feasible_solution(coefficients, num_sites, seed)
    return CurrentLayout.from_matrix(instance, y)


# ----------------------------------------------------------------------
# CurrentLayout
# ----------------------------------------------------------------------
class TestCurrentLayout:
    def test_validation_at_construction(self):
        with pytest.raises(OptionsError, match="num_sites"):
            CurrentLayout(num_sites=0, placements={"T.a": (0,)})
        with pytest.raises(OptionsError, match="no attribute placements"):
            CurrentLayout(num_sites=2, placements={})
        with pytest.raises(OptionsError, match="unplaced"):
            CurrentLayout(num_sites=2, placements={"T.a": ()})
        with pytest.raises(OptionsError, match="outside"):
            CurrentLayout(num_sites=2, placements={"T.a": (2,)})
        with pytest.raises(OptionsError, match="outside"):
            CurrentLayout(num_sites=2, placements={"T.a": (-1,)})
        with pytest.raises(OptionsError, match="non-integer"):
            CurrentLayout(num_sites=2, placements={"T.a": (0.5,)})

    def test_placements_normalised_and_frozen(self):
        layout = CurrentLayout(num_sites=3, placements={"T.a": [2, 0, 2]})
        assert layout.placements["T.a"] == (0, 2)
        with pytest.raises(TypeError):
            layout.placements["T.b"] = (1,)  # type: ignore[index]
        assert layout.attributes == frozenset({"T.a"})

    def test_json_round_trip_is_exact(self):
        instance = small_random_instance(1)
        layout = layout_for(instance, 3, seed=5)
        restored = CurrentLayout.from_json(layout.to_json())
        assert restored == layout
        assert restored.to_json() == layout.to_json()

    def test_pickle_round_trip(self):
        instance = small_random_instance(2)
        layout = layout_for(instance, 2, seed=7)
        assert pickle.loads(pickle.dumps(layout)) == layout

    def test_from_dict_rejects_unknown_version_and_missing_keys(self):
        with pytest.raises(OptionsError, match="format_version"):
            CurrentLayout.from_dict(
                {"format_version": 99, "num_sites": 1, "placements": {"a": [0]}}
            )
        with pytest.raises(OptionsError, match="misses key"):
            CurrentLayout.from_dict({"num_sites": 1})

    def test_from_result_matches_from_matrix(self):
        instance = small_random_instance(3)
        report = Advisor().advise(
            SolveRequest(instance, num_sites=2, strategy="greedy")
        )
        layout = CurrentLayout.from_result(report.result)
        assert layout == CurrentLayout.from_matrix(instance, report.result.y)
        np.testing.assert_array_equal(
            layout.to_matrix(instance, 2), report.result.y.astype(float)
        )

    def test_to_matrix_zero_pads_grown_cluster(self):
        instance = small_random_instance(4)
        layout = layout_for(instance, 2, seed=1)
        wide = layout.to_matrix(instance, 4)
        assert wide.shape == (len(instance.attributes), 4)
        np.testing.assert_array_equal(wide[:, 2:], 0.0)
        np.testing.assert_array_equal(wide[:, :2], layout.to_matrix(instance, 2))

    def test_to_matrix_rejects_shrink_and_mismatch(self):
        instance = small_random_instance(4)
        layout = layout_for(instance, 3, seed=1)
        with pytest.raises(OptionsError, match="only 2"):
            layout.to_matrix(instance, 2)
        other = small_random_instance(5, num_tables=2)
        with pytest.raises(OptionsError, match="do not match"):
            layout.to_matrix(other, 3)


# ----------------------------------------------------------------------
# SolveRequest: validation and byte-stability
# ----------------------------------------------------------------------
class TestRequestLayoutFields:
    def test_migration_cost_without_layout_rejected(self):
        instance = small_random_instance(0)
        with pytest.raises(OptionsError, match="without current_layout"):
            SolveRequest(instance, num_sites=2, migration_cost=1.0)

    def test_negative_migration_cost_rejected(self):
        instance = small_random_instance(0)
        layout = layout_for(instance, 2)
        with pytest.raises(OptionsError, match=">= 0"):
            SolveRequest(
                instance, num_sites=2,
                current_layout=layout, migration_cost=-1.0,
            )

    def test_layout_attribute_mismatch_rejected(self):
        instance = small_random_instance(0)
        other = small_random_instance(1, num_tables=2)
        layout = layout_for(other, 2)
        with pytest.raises(OptionsError, match="do not match"):
            SolveRequest(instance, num_sites=2, current_layout=layout)

    def test_layout_wider_than_request_rejected(self):
        instance = small_random_instance(0)
        layout = layout_for(instance, 3)
        with pytest.raises(OptionsError, match="spans 3 sites"):
            SolveRequest(instance, num_sites=2, current_layout=layout)

    def test_wrong_layout_type_rejected(self):
        instance = small_random_instance(0)
        with pytest.raises(OptionsError, match="must be a CurrentLayout"):
            SolveRequest(instance, num_sites=2, current_layout="layout.json")

    def test_dict_layout_coerced(self):
        instance = small_random_instance(0)
        layout = layout_for(instance, 2)
        request = SolveRequest(
            instance, num_sites=2, current_layout=layout.to_dict()
        )
        assert isinstance(request.current_layout, CurrentLayout)
        assert request.current_layout == layout

    def test_layout_free_payload_is_byte_stable(self):
        """A request without a layout serialises exactly as before the
        layout fields existed: no new keys, identical canonical JSON —
        the service's coalescing keys and queue envelopes for legacy
        requests are unchanged."""
        instance = small_random_instance(1)
        request = SolveRequest(instance, num_sites=2, strategy="greedy")
        payload = request.to_dict()
        assert "current_layout" not in payload
        assert "migration_cost" not in payload
        # from_dict of a legacy payload (which never had the keys)
        # equals the modern layout-free request, canonical form included.
        legacy = SolveRequest.from_dict(payload)
        assert legacy.current_layout is None
        assert legacy.migration_cost == 0.0
        assert legacy.canonical_json() == request.canonical_json()
        assert legacy.canonical_key() == request.canonical_key()

    def test_layout_round_trips_through_json(self):
        instance = small_random_instance(1)
        layout = layout_for(instance, 2, seed=3)
        request = SolveRequest(
            instance, num_sites=2, strategy="greedy",
            current_layout=layout, migration_cost=2.5,
        )
        restored = SolveRequest.from_json(request.to_json())
        assert restored.current_layout == layout
        assert restored.migration_cost == 2.5
        assert restored.canonical_json() == request.canonical_json()
        # Layout-carrying and layout-free requests never share a key.
        bare = request.with_(current_layout=None, migration_cost=0.0)
        assert bare.canonical_key() != request.canonical_key()


# ----------------------------------------------------------------------
# Evaluator: the migration term
# ----------------------------------------------------------------------
class TestEvaluatorMigration:
    def _setup(self, seed=0, num_sites=3, cost=2.0, lam=0.9):
        instance = small_random_instance(seed)
        base = build_coefficients(
            instance, CostParameters(load_balance_lambda=lam)
        )
        layout = layout_for(instance, num_sites, seed=seed + 10)
        coefficients = attach_migration(base, layout, cost, num_sites)
        return instance, base, coefficients

    def test_migration_cost_matches_formula(self):
        instance, _, coefficients = self._setup(cost=2.0)
        block = coefficients.migration
        widths = np.asarray(instance.attribute_widths(), dtype=float)
        np.testing.assert_allclose(
            block.c5, 2.0 * widths[:, None] * (1.0 - block.y0)
        )
        evaluator = SolutionEvaluator(coefficients)
        x, y = random_feasible_solution(coefficients, 3, 42)
        expected = float((block.c5 * y).sum())
        assert evaluator.migration_cost(y) == pytest.approx(expected)

    def test_incumbent_moves_nothing(self):
        _, _, coefficients = self._setup()
        evaluator = SolutionEvaluator(coefficients)
        assert evaluator.migration_cost(coefficients.migration.y0) == 0.0

    def test_objective_and_breakdown_gain_the_term(self):
        _, base, coefficients = self._setup(seed=1)
        dense = SolutionEvaluator(coefficients)
        plain = SolutionEvaluator(base)
        for seed in range(4):
            x, y = random_feasible_solution(coefficients, 3, seed)
            move = dense.migration_cost(y)
            assert dense.objective4(x, y) == pytest.approx(
                plain.objective4(x, y) + move, rel=1e-12
            )
            breakdown = dense.breakdown(x, y)
            assert breakdown.migration == pytest.approx(move)
            assert breakdown.objective4 == pytest.approx(dense.objective4(x, y))
            # Equation (5) loads carry no move term: blending is exact.
            lam = coefficients.parameters.load_balance_lambda
            assert dense.objective6(x, y) == pytest.approx(
                plain.objective6(x, y) + lam * move, rel=1e-12
            )

    def test_lower_bound_stays_sound_with_migration(self):
        for seed in range(3):
            _, _, coefficients = self._setup(seed=seed, cost=3.0, lam=0.5)
            bound = objective6_lower_bound(coefficients, 3)
            dense = SolutionEvaluator(coefficients)
            for sol_seed in range(5):
                x, y = random_feasible_solution(coefficients, 3, sol_seed)
                assert dense.objective6(x, y) >= bound


# ----------------------------------------------------------------------
# Incremental evaluator parity
# ----------------------------------------------------------------------
class TestIncrementalMigration:
    TOLERANCE = 1e-9

    def _gap(self, a: float, b: float) -> float:
        return abs(a - b) / max(1.0, abs(b))

    def test_mutation_walks_match_dense(self):
        num_sites = 3
        for seed in range(3):
            instance = small_random_instance(seed)
            base = build_coefficients(
                instance, CostParameters(load_balance_lambda=0.5)
            )
            layout = layout_for(instance, num_sites, seed=seed + 50)
            coefficients = attach_migration(base, layout, 2.0, num_sites)
            dense = SolutionEvaluator(coefficients)
            incremental = IncrementalEvaluator(coefficients, num_sites)
            x, y = random_feasible_solution(coefficients, num_sites, seed)
            incremental.reset(x, y)
            rng = np.random.default_rng(seed + 99)
            for _ in range(20):
                if rng.random() < 0.5:
                    chosen = rng.choice(
                        coefficients.num_transactions, size=2, replace=False
                    )
                    incremental.move_transactions(
                        chosen, rng.integers(0, num_sites, 2)
                    )
                else:
                    incremental.delta_toggle_replicas(
                        rng.integers(0, coefficients.num_attributes, 4),
                        rng.integers(0, num_sites, 4),
                    )
                xm, ym = incremental.x_matrix(), incremental.y_matrix()
                assert self._gap(
                    incremental.objective4(), dense.objective4(xm, ym)
                ) < self.TOLERANCE
                assert self._gap(
                    incremental.objective6(), dense.objective6(xm, ym)
                ) < self.TOLERANCE

    def test_rollback_restores_migration_scalar_bitwise(self):
        num_sites = 3
        instance = small_random_instance(2)
        base = build_coefficients(instance, CostParameters())
        layout = layout_for(instance, num_sites, seed=8)
        coefficients = attach_migration(base, layout, 1.5, num_sites)
        incremental = IncrementalEvaluator(coefficients, num_sites)
        x, y = random_feasible_solution(coefficients, num_sites, 2)
        incremental.reset(x, y)
        before_objective = incremental.objective6()
        before_migration = incremental._migration
        incremental.begin_trial()
        incremental.delta_toggle_replicas([0, 1, 2], [0, 1, 2])
        incremental.move_transactions([0], [1])
        incremental.rollback()
        assert incremental.objective6() == before_objective
        assert incremental._migration == before_migration


# ----------------------------------------------------------------------
# Backward compatibility: layout + zero cost changes nothing
# ----------------------------------------------------------------------
class TestBackwardCompatibility:
    @pytest.mark.parametrize(
        "strategy", ["greedy", "affinity", "round-robin", "hillclimb", "qp"]
    )
    def test_zero_cost_layout_is_bitwise_inert(self, strategy):
        """Strategies that ignore warm starts must return bit-identical
        solutions whether or not an incumbent rides along at
        ``migration_cost=0`` — the layout only changes the arithmetic
        through the move term, never through its mere presence."""
        instance = small_random_instance(1)
        advisor = Advisor()
        bare = SolveRequest(
            instance, num_sites=2, strategy=strategy, seed=3
        )
        layout = CurrentLayout.from_result(
            advisor.advise(
                SolveRequest(instance, num_sites=2, strategy="round-robin")
            ).result
        )
        carrying = bare.with_(current_layout=layout, migration_cost=0.0)
        plain = advisor.advise(bare).result
        loaded = advisor.advise(carrying).result
        np.testing.assert_array_equal(plain.x, loaded.x)
        np.testing.assert_array_equal(plain.y, loaded.y)
        assert plain.objective == loaded.objective

    def test_sa_without_layout_unchanged_by_feature(self):
        """The layout-free SA path is untouched: explicit
        ``warm_start=None`` spells the same request."""
        instance = small_random_instance(2)
        advisor = Advisor()
        base = SolveRequest(
            instance, num_sites=2, strategy="sa",
            options=dict(SA_OPTIONS), seed=5,
        )
        a = advisor.advise(base).result
        b = advisor.advise(base.with_options(warm_start=None)).result
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)
        assert a.objective == b.objective


# ----------------------------------------------------------------------
# SA warm starts
# ----------------------------------------------------------------------
class TestSaWarmStart:
    @pytest.mark.parametrize("allow_replication", [True, False])
    def test_migrated_best_never_loses_to_stay_put(self, allow_replication):
        """SA warm-starts from the incumbent, so its best — measured on
        the migration-augmented objective (6) — is bounded by the
        deterministic stay-put solution on every instance and seed."""
        advisor = Advisor()
        for seed in range(3):
            instance = small_random_instance(seed)
            layout = layout_for(instance, 2, seed=seed + 20)
            request = SolveRequest(
                instance, num_sites=2, strategy="sa",
                options=dict(SA_OPTIONS), seed=seed,
                allow_replication=allow_replication,
                current_layout=layout, migration_cost=1.0,
            )
            coefficients = advisor.coefficients_for(request)
            subsolver = SubproblemSolver(coefficients, 2)
            stay_x, stay_y, _ = warm_start_solution(
                subsolver,
                coefficients.migration.y0,
                disjoint=not allow_replication,
            )
            evaluator = SolutionEvaluator(coefficients)
            stay = evaluator.objective6(stay_x, stay_y)
            result = advisor.advise(request).result
            best = evaluator.objective6(result.x, result.y)
            assert best <= stay + 1e-9 * max(1.0, abs(stay))

    def test_queue_backend_matches_serial_with_layout(self):
        """The portfolio envelope (format v3) carries the layout to
        workers: queue execution replays bit-identically to serial."""
        instance = small_random_instance(3)
        layout = layout_for(instance, 2, seed=30)
        advisor = Advisor()
        results = {}
        for backend in ("serial", "queue"):
            request = SolveRequest(
                instance, num_sites=2, strategy="sa-portfolio",
                options={**SA_OPTIONS, "restarts": 2, "backend": backend},
                seed=7, current_layout=layout, migration_cost=1.0,
            )
            results[backend] = advisor.advise(request).result
        np.testing.assert_array_equal(
            results["serial"].x, results["queue"].x
        )
        np.testing.assert_array_equal(
            results["serial"].y, results["queue"].y
        )
        assert results["serial"].objective == results["queue"].objective


# ----------------------------------------------------------------------
# readvise
# ----------------------------------------------------------------------
class TestReadvise:
    def _request(self, instance, layout, cost=1.0, **changes):
        base = SolveRequest(
            instance, num_sites=2, strategy="sa",
            options=dict(SA_OPTIONS), seed=4,
            current_layout=layout, migration_cost=cost,
        )
        return base.with_(**changes) if changes else base

    def test_requires_a_layout(self):
        instance = small_random_instance(0)
        with pytest.raises(OptionsError, match="current_layout"):
            Advisor().readvise(SolveRequest(instance, num_sites=2))

    def test_report_is_consistent(self):
        instance = small_random_instance(1)
        layout = layout_for(instance, 2, seed=11)
        report = Advisor().readvise(self._request(instance, layout, cost=2.0))
        verdict = report.migration
        assert verdict is not None
        assert verdict.migration_cost == 2.0
        assert verdict.recommendation in ("stay", "migrate")
        # total = base objective + lambda * move, and the warm start
        # bounds it by the stay-put cost.
        lam = report.request.parameters.load_balance_lambda
        assert verdict.total_cost == pytest.approx(
            verdict.solve_cost + lam * verdict.move_cost, rel=1e-9
        )
        assert verdict.total_cost <= verdict.stay_cost + 1e-9 * max(
            1.0, abs(verdict.stay_cost)
        )
        assert verdict.net_benefit == pytest.approx(
            verdict.stay_cost - verdict.total_cost
        )

    def test_bad_incumbent_flips_to_migrate(self):
        """A fully-replicated incumbent is expensive to keep, and since
        ``c5`` only charges *new* replicas, shrinking it is free: the
        re-solve abandons it at zero move cost — at any move price."""
        instance = small_random_instance(2)
        everywhere = CurrentLayout.from_matrix(
            instance, np.ones((len(instance.attributes), 2))
        )
        advisor = Advisor()
        for cost in (0.0, 1e9):
            verdict = advisor.readvise(
                self._request(instance, everywhere, cost=cost)
            ).migration
            assert verdict.recommendation == "migrate"
            assert verdict.move_cost == 0.0
            assert verdict.total_cost < verdict.stay_cost

    def test_single_site_is_always_stay(self):
        """One site admits exactly one layout: the re-solve reproduces
        the stay-put solution and the verdict is stay with no move."""
        instance = small_random_instance(2)
        only_site = CurrentLayout.from_matrix(
            instance, np.ones((len(instance.attributes), 1))
        )
        verdict = Advisor().readvise(
            self._request(instance, only_site, num_sites=1)
        ).migration
        assert verdict.recommendation == "stay"
        assert verdict.move_cost == 0.0
        assert verdict.total_cost == pytest.approx(verdict.stay_cost)

    @pytest.mark.parametrize("form", ["decayed", "batch", "mapping", "events"])
    def test_trace_forms_reestimate_the_instance(self, form):
        instance = small_random_instance(3)
        layout = layout_for(instance, 2, seed=13)
        events = [
            QueryEvent(query.name, dict(query.rows))
            for query in instance.queries
        ]
        if form == "decayed":
            trace = DecayedTraceCollector(half_life=100.0)
            for tick, event in enumerate(events):
                trace.observe(event.query_name, event.rows, at=float(tick))
        elif form == "batch":
            trace = TraceCollector()
            trace.extend(events)
        elif form == "mapping":
            trace = estimate_statistics(events)
        else:
            trace = events
        report = Advisor().readvise(
            self._request(instance, layout), trace=trace
        )
        assert report.request.instance.name.endswith("(traced)")
        assert report.migration is not None

    def test_empty_trace_raises(self):
        instance = small_random_instance(3)
        layout = layout_for(instance, 2, seed=13)
        with pytest.raises(WorkloadError, match="empty trace"):
            Advisor().readvise(
                self._request(instance, layout), trace=TraceCollector()
            )


# ----------------------------------------------------------------------
# Streaming statistics
# ----------------------------------------------------------------------
class TestDecayedTraceCollector:
    def test_half_life_must_be_positive(self):
        with pytest.raises(WorkloadError, match="half_life"):
            DecayedTraceCollector(half_life=0.0)

    def test_decay_halves_per_half_life(self):
        collector = DecayedTraceCollector(half_life=10.0)
        collector.observe("q", at=0.0)
        collector.observe("q", at=10.0)
        stats = collector.statistics()
        assert stats["q"].frequency == pytest.approx(1.5)
        # Rolling the clock forward decays the snapshot further.
        later = collector.statistics(now=20.0)
        assert later["q"].frequency == pytest.approx(0.75)
        assert collector.now == 20.0

    def test_row_means_are_decay_weighted(self):
        collector = DecayedTraceCollector(half_life=10.0)
        collector.observe("q", {"T": 2.0}, at=0.0)
        collector.observe("q", {"T": 4.0}, at=10.0)
        mean = collector.statistics()["q"].mean_rows["T"]
        assert mean == pytest.approx((0.5 * 2.0 + 4.0) / 1.5)

    def test_time_going_backwards_raises(self):
        collector = DecayedTraceCollector(half_life=10.0)
        collector.observe("q", at=5.0)
        with pytest.raises(WorkloadError, match="backwards"):
            collector.observe("q", at=4.0)

    def test_negative_rows_raise(self):
        collector = DecayedTraceCollector(half_life=10.0)
        with pytest.raises(WorkloadError, match="negative row count"):
            collector.observe("q", {"T": -1.0}, at=0.0)

    def test_recent_mix_outvotes_stale_history(self):
        collector = DecayedTraceCollector(half_life=5.0)
        for tick in range(20):
            collector.observe("old", at=float(tick))
        for tick in range(20, 30):
            collector.observe("new", at=float(tick))
        stats = collector.statistics()
        assert stats["new"].frequency > stats["old"].frequency


# ----------------------------------------------------------------------
# Estimator edge cases and the round-trip property
# ----------------------------------------------------------------------
class TestEstimatorEdgeCases:
    def test_empty_trace_raises(self):
        instance = small_random_instance(0)
        with pytest.raises(WorkloadError, match="empty trace"):
            reestimate_from_statistics(instance, {})
        with pytest.raises(WorkloadError, match="empty trace"):
            reestimate_instance(instance, [])

    @pytest.mark.parametrize("scale", [0.0, -1.0])
    def test_zero_window_raises(self, scale):
        collector = TraceCollector()
        collector.record("q")
        with pytest.raises(WorkloadError, match="frequency_scale"):
            collector.aggregate(frequency_scale=scale)

    def test_unknown_query_name_raises(self):
        instance = small_random_instance(0)
        with pytest.raises(WorkloadError, match="unknown query template"):
            reestimate_instance(instance, [QueryEvent("no-such-query")])

    def test_merge_equals_direct_recording(self):
        left, right, direct = TraceCollector(), TraceCollector(), TraceCollector()
        for collector in (left, direct):
            collector.record("a", {"T": 2.0})
        for collector in (right, direct):
            collector.record("a", {"T": 4.0})
            collector.record("b")
        left.merge(right)
        assert left.total_events == direct.total_events == 3
        merged, straight = left.aggregate(), direct.aggregate()
        assert merged.keys() == straight.keys()
        for name in merged:
            assert merged[name] == straight[name]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_self_trace_reproduces_statistics(self, seed):
        """A trace synthesised at the instance's own statistics —
        ``f_q`` events per query, each retrieving ``n_{a,q}`` rows —
        re-estimates to the original ``f_q`` and ``n_{a,q}``."""
        instance = small_random_instance(seed % 7)
        events = []
        for query in instance.queries:
            count = max(1, int(round(query.frequency)))
            events.extend(
                QueryEvent(query.name, dict(query.rows)) for _ in range(count)
            )
        rebuilt = reestimate_instance(instance, events)
        original = {query.name: query for query in instance.queries}
        for query in rebuilt.queries:
            reference = original[query.name]
            assert query.frequency == pytest.approx(
                max(1, int(round(reference.frequency)))
            )
            for table, rows in reference.rows.items():
                assert query.rows[table] == pytest.approx(rows)


# ----------------------------------------------------------------------
# Service trace collection
# ----------------------------------------------------------------------
class TestServiceTraces:
    def test_knob_off_is_a_noop(self):
        from repro.service import AsyncAdvisor

        service = AsyncAdvisor()
        assert service.record_event("q") is False
        assert service.client_trace() is None
        assert service.merged_trace().total_events == 0
        assert service.stats()["trace_clients"] == 0

    def test_per_client_traces_and_merge(self):
        from repro.service import AsyncAdvisor, ServiceConfig

        service = AsyncAdvisor(config=ServiceConfig(collect_traces=True))
        assert service.record_event("q1", {"T": 2.0}, client="alice") is True
        service.record_event("q1", client="bob")
        service.record_event("q2", client="bob")
        assert service.client_trace("alice").total_events == 1
        assert service.client_trace("bob").total_events == 2
        merged = service.merged_trace().aggregate()
        assert merged["q1"].executions == 2
        assert merged["q2"].executions == 1
        stats = service.stats()
        assert stats["trace_clients"] == 2
        assert stats["trace_events"] == 3

    def test_traces_are_lru_bounded_by_max_clients(self):
        from repro.service import AsyncAdvisor, ServiceConfig

        service = AsyncAdvisor(
            config=ServiceConfig(collect_traces=True, max_clients=2)
        )
        for client in ("a", "b", "c"):
            service.record_event("q", client=client)
        assert service.client_trace("a") is None
        assert service.stats()["trace_clients"] == 2
