"""The linearised model (7): construction, extraction, consistency."""

import numpy as np
import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import SolverError
from repro.qp.linearize import build_linearized_model
from tests.conftest import small_random_instance


class TestConstruction:
    def test_variable_counts(self, tiny_coefficients):
        linearized = build_linearized_model(tiny_coefficients, 2)
        model = linearized.model
        # 2 transactions * 2 sites + 5 attributes * 2 sites binaries.
        assert model.num_integer_variables == 4 + 10
        assert linearized.m_var is not None  # lambda < 1 by default

    def test_pure_cost_has_no_load_variable(self, tiny_instance):
        coefficients = build_coefficients(
            tiny_instance, CostParameters(load_balance_lambda=1.0)
        )
        linearized = build_linearized_model(coefficients, 2)
        assert linearized.m_var is None

    def test_u_variables_only_for_nonzero_pairs(self, tiny_coefficients):
        linearized = build_linearized_model(tiny_coefficients, 2)
        c1, c3 = tiny_coefficients.c1, tiny_coefficients.c3
        pairs = {(t, a) for (t, a, _) in linearized.u_vars}
        for t, a in pairs:
            assert c1[a, t] != 0 or c3[a, t] != 0

    def test_replication_flag_changes_constraint(self, tiny_coefficients):
        replicated = build_linearized_model(tiny_coefficients, 2)
        disjoint = build_linearized_model(
            tiny_coefficients, 2, allow_replication=False
        )
        # Same sizes; only senses differ on the y-placement rows.
        from repro.solver.expr import Sense

        def y_senses(linearized):
            return [
                c.sense
                for c in linearized.model.constraints
                if c.name.startswith("place_y")
            ]

        assert all(s is Sense.GE for s in y_senses(replicated))
        assert all(s is Sense.EQ for s in y_senses(disjoint))

    def test_rejects_relevant_accounting(self, tiny_instance):
        coefficients = build_coefficients(
            tiny_instance,
            CostParameters(write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES),
        )
        with pytest.raises(SolverError, match="RELEVANT"):
            build_linearized_model(coefficients, 2)

    def test_rejects_zero_sites(self, tiny_coefficients):
        with pytest.raises(SolverError, match="at least one site"):
            build_linearized_model(tiny_coefficients, 0)

    def test_symmetry_breaking_pins_first_transactions(self, tiny_coefficients):
        linearized = build_linearized_model(tiny_coefficients, 2)
        names = [c.name for c in linearized.model.constraints]
        assert any(name.startswith("sym[") for name in names)
        unbroken = build_linearized_model(
            tiny_coefficients, 2, symmetry_breaking=False
        )
        assert not any(
            c.name.startswith("sym[") for c in unbroken.model.constraints
        )


class TestSolutionConsistency:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mip_objective_matches_evaluator(self, seed):
        """At the MIP optimum, the model's objective equals the
        evaluator's objective (6) of the extracted solution, and every
        u variable equals x*y."""
        instance = small_random_instance(seed)
        coefficients = build_coefficients(instance, CostParameters())
        linearized = build_linearized_model(coefficients, 2)
        solution = linearized.model.solve(backend="scipy", gap=1e-9)
        x, y = linearized.extract(solution.values)
        evaluator = SolutionEvaluator(coefficients)
        assert solution.objective == pytest.approx(
            evaluator.objective6(x, y), rel=1e-6
        )
        for (t, a, s), u in linearized.u_vars.items():
            assert solution.values[u.index] == pytest.approx(
                float(x[t, s] and y[a, s]), abs=1e-6
            )

    def test_incumbent_vector_round_trips(self, tiny_coefficients):
        linearized = build_linearized_model(tiny_coefficients, 2)
        x = np.array([[True, False], [False, True]])
        phi = tiny_coefficients.phi_bool
        y = (phi @ x).astype(bool)
        y[~y.any(axis=1), 0] = True
        values = linearized.incumbent_vector(x, y)
        x2, y2 = linearized.extract(values)
        np.testing.assert_array_equal(x, x2)
        np.testing.assert_array_equal(y, y2)
        # The incumbent must satisfy the model's constraints.
        from repro.solver.branch_and_bound import solution_violations

        assert solution_violations(
            linearized.model.to_standard_arrays(), values
        ) == 0.0

    def test_latency_variables_created_for_writes(self, tiny_instance):
        coefficients = build_coefficients(
            tiny_instance, CostParameters(latency_penalty=10.0)
        )
        linearized = build_linearized_model(coefficients, 2, latency=True)
        assert len(linearized.psi_vars) == 1  # one write query
        solution = linearized.model.solve(backend="scipy", gap=1e-9)
        x, y = linearized.extract(solution.values)
        evaluator = SolutionEvaluator(coefficients)
        q_index = next(iter(linearized.psi_vars))
        psi_value = solution.values[linearized.psi_vars[q_index].index]
        assert psi_value == pytest.approx(
            evaluator.latency(x, y) / 10.0, abs=1e-6
        )
