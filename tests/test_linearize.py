"""The linearised model (7): construction, extraction, consistency."""

import numpy as np
import pytest

from repro.costmodel.coefficients import CoefficientCache, build_coefficients
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.evaluator import SolutionEvaluator
from repro.exceptions import SolverError
from repro.qp.linearize import LinearizationCache, build_linearized_model
from tests.conftest import small_random_instance


class TestConstruction:
    def test_variable_counts(self, tiny_coefficients):
        linearized = build_linearized_model(tiny_coefficients, 2)
        model = linearized.model
        # 2 transactions * 2 sites + 5 attributes * 2 sites binaries.
        assert model.num_integer_variables == 4 + 10
        assert linearized.m_var is not None  # lambda < 1 by default

    def test_pure_cost_has_no_load_variable(self, tiny_instance):
        coefficients = build_coefficients(
            tiny_instance, CostParameters(load_balance_lambda=1.0)
        )
        linearized = build_linearized_model(coefficients, 2)
        assert linearized.m_var is None

    def test_u_variables_only_for_nonzero_pairs(self, tiny_coefficients):
        linearized = build_linearized_model(tiny_coefficients, 2)
        c1, c3 = tiny_coefficients.c1, tiny_coefficients.c3
        pairs = {(t, a) for (t, a, _) in linearized.u_vars}
        for t, a in pairs:
            assert c1[a, t] != 0 or c3[a, t] != 0

    def test_replication_flag_changes_constraint(self, tiny_coefficients):
        replicated = build_linearized_model(tiny_coefficients, 2)
        disjoint = build_linearized_model(
            tiny_coefficients, 2, allow_replication=False
        )
        # Same sizes; only senses differ on the y-placement rows.
        from repro.solver.expr import Sense

        def y_senses(linearized):
            return [
                c.sense
                for c in linearized.model.constraints
                if c.name.startswith("place_y")
            ]

        assert all(s is Sense.GE for s in y_senses(replicated))
        assert all(s is Sense.EQ for s in y_senses(disjoint))

    def test_rejects_relevant_accounting(self, tiny_instance):
        coefficients = build_coefficients(
            tiny_instance,
            CostParameters(write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES),
        )
        with pytest.raises(SolverError, match="RELEVANT"):
            build_linearized_model(coefficients, 2)

    def test_rejects_zero_sites(self, tiny_coefficients):
        with pytest.raises(SolverError, match="at least one site"):
            build_linearized_model(tiny_coefficients, 0)

    def test_symmetry_breaking_pins_first_transactions(self, tiny_coefficients):
        linearized = build_linearized_model(tiny_coefficients, 2)
        names = [c.name for c in linearized.model.constraints]
        assert any(name.startswith("sym[") for name in names)
        unbroken = build_linearized_model(
            tiny_coefficients, 2, symmetry_breaking=False
        )
        assert not any(
            c.name.startswith("sym[") for c in unbroken.model.constraints
        )


def _assert_same_arrays(first, second):
    """Two models must convert to identical standard arrays."""
    a = first.model.to_standard_arrays()
    b = second.model.to_standard_arrays()
    np.testing.assert_array_equal(a.objective, b.objective)
    assert (a.matrix != b.matrix).nnz == 0
    np.testing.assert_array_equal(a.rhs, b.rhs)
    assert a.senses == b.senses
    np.testing.assert_array_equal(a.lower, b.lower)
    np.testing.assert_array_equal(a.upper, b.upper)
    np.testing.assert_array_equal(a.integrality, b.integrality)


class TestLinearizationCache:
    """The sweep-level skeleton cache must never change the model."""

    def test_penalty_sweep_hits_and_matches_uncached(self):
        instance = small_random_instance(4)
        coefficient_cache = CoefficientCache(instance)
        cache = LinearizationCache()
        for penalty in (1.0, 4.0, 16.0, 64.0):
            coefficients = coefficient_cache.coefficients(
                CostParameters(network_penalty=penalty)
            )
            cached = build_linearized_model(coefficients, 2, cache=cache)
            plain = build_linearized_model(coefficients, 2)
            _assert_same_arrays(cached, plain)
        assert cache.hits == 3  # first point builds, the rest re-price

    def test_lambda_regime_change_misses(self):
        """Crossing lambda = 1 adds/removes the load side; the cache
        must rebuild, not reuse."""
        instance = small_random_instance(4)
        coefficient_cache = CoefficientCache(instance)
        cache = LinearizationCache()
        for lam in (1.0, 0.5):
            coefficients = coefficient_cache.coefficients(
                CostParameters(load_balance_lambda=lam)
            )
            cached = build_linearized_model(coefficients, 2, cache=cache)
            plain = build_linearized_model(coefficients, 2)
            assert (cached.m_var is None) == (lam >= 1.0)
            _assert_same_arrays(cached, plain)
        assert cache.hits == 0

    def test_different_instance_misses(self):
        cache = LinearizationCache()
        for seed in (4, 5):
            coefficients = build_coefficients(
                small_random_instance(seed), CostParameters()
            )
            cached = build_linearized_model(coefficients, 2, cache=cache)
            plain = build_linearized_model(coefficients, 2)
            _assert_same_arrays(cached, plain)
        assert cache.hits == 0

    def test_cached_solutions_identical(self):
        """Solving the re-priced clone gives the same optimum."""
        instance = small_random_instance(1)
        coefficient_cache = CoefficientCache(instance)
        cache = LinearizationCache()
        for penalty in (2.0, 8.0):
            coefficients = coefficient_cache.coefficients(
                CostParameters(network_penalty=penalty)
            )
            cached = build_linearized_model(coefficients, 2, cache=cache)
            plain = build_linearized_model(coefficients, 2)
            solved_cached = cached.model.solve(backend="scipy", gap=1e-9)
            solved_plain = plain.model.solve(backend="scipy", gap=1e-9)
            assert solved_cached.objective == pytest.approx(
                solved_plain.objective, rel=1e-9
            )

    def test_latency_models_cacheable(self):
        instance = small_random_instance(2)
        indicators = None
        cache = LinearizationCache()
        coefficient_cache = CoefficientCache(instance, indicators)
        for penalty in (5.0, 10.0):
            coefficients = coefficient_cache.coefficients(
                CostParameters(latency_penalty=penalty)
            )
            cached = build_linearized_model(coefficients, 2, latency=True, cache=cache)
            plain = build_linearized_model(coefficients, 2, latency=True)
            assert cached.psi_vars.keys() == plain.psi_vars.keys()
            _assert_same_arrays(cached, plain)
        assert cache.hits == 1


class TestCoefficientCache:
    def test_bitwise_identical_to_uncached(self):
        instance = small_random_instance(0)
        coefficient_cache = CoefficientCache(instance)
        for parameters in (
            CostParameters(),
            CostParameters(network_penalty=0.0),
            CostParameters(network_penalty=32.0, load_balance_lambda=0.5),
            CostParameters(write_accounting=WriteAccounting.NO_ATTRIBUTES),
        ):
            cached = coefficient_cache.coefficients(parameters)
            plain = build_coefficients(instance, parameters)
            for name in ("c1", "c2", "c3", "c4", "weights"):
                np.testing.assert_array_equal(
                    getattr(cached, name), getattr(plain, name)
                )

    def test_same_parameters_share_object(self):
        instance = small_random_instance(0)
        coefficient_cache = CoefficientCache(instance)
        first = coefficient_cache.coefficients(CostParameters(network_penalty=8.0))
        second = coefficient_cache.coefficients(CostParameters(network_penalty=8.0))
        assert first is second


class TestSolutionConsistency:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mip_objective_matches_evaluator(self, seed):
        """At the MIP optimum, the model's objective equals the
        evaluator's objective (6) of the extracted solution, and every
        u variable equals x*y."""
        instance = small_random_instance(seed)
        coefficients = build_coefficients(instance, CostParameters())
        linearized = build_linearized_model(coefficients, 2)
        solution = linearized.model.solve(backend="scipy", gap=1e-9)
        x, y = linearized.extract(solution.values)
        evaluator = SolutionEvaluator(coefficients)
        assert solution.objective == pytest.approx(
            evaluator.objective6(x, y), rel=1e-6
        )
        for (t, a, s), u in linearized.u_vars.items():
            assert solution.values[u.index] == pytest.approx(
                float(x[t, s] and y[a, s]), abs=1e-6
            )

    def test_incumbent_vector_round_trips(self, tiny_coefficients):
        linearized = build_linearized_model(tiny_coefficients, 2)
        x = np.array([[True, False], [False, True]])
        phi = tiny_coefficients.phi_bool
        y = (phi @ x).astype(bool)
        y[~y.any(axis=1), 0] = True
        values = linearized.incumbent_vector(x, y)
        x2, y2 = linearized.extract(values)
        np.testing.assert_array_equal(x, x2)
        np.testing.assert_array_equal(y, y2)
        # The incumbent must satisfy the model's constraints.
        from repro.solver.branch_and_bound import solution_violations

        assert solution_violations(
            linearized.model.to_standard_arrays(), values
        ) == 0.0

    def test_latency_variables_created_for_writes(self, tiny_instance):
        coefficients = build_coefficients(
            tiny_instance, CostParameters(latency_penalty=10.0)
        )
        linearized = build_linearized_model(coefficients, 2, latency=True)
        assert len(linearized.psi_vars) == 1  # one write query
        solution = linearized.model.solve(backend="scipy", gap=1e-9)
        x, y = linearized.extract(solution.values)
        evaluator = SolutionEvaluator(coefficients)
        q_index = next(iter(linearized.psi_vars))
        psi_value = solution.values[linearized.psi_vars[q_index].index]
        assert psi_value == pytest.approx(
            evaluator.latency(x, y) / 10.0, abs=1e-6
        )
