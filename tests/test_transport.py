"""Fault-tolerant socket transport: protocol, fault harness, chaos parity.

Pins the PR acceptance contract: length-prefixed frames round-trip and
reject garbage, the connect-time version handshake fails loudly on
mismatch, the deterministic fault harness replays its schedule exactly,
and — the headline — the socket portfolio returns a best that is
bitwise identical to :class:`~repro.sa.backends.serial.SerialBackend`
under *every* fault schedule, with incumbent pruning on and off.
"""

import os
import socket as socket_module
import threading

import numpy as np
import pytest

from repro.api.advisor import advise
from repro.api.request import SolveRequest
from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.exceptions import (
    ConnectionClosedError,
    OptionsError,
    SolverError,
    TransportError,
)
from repro.sa.backends import backend_names, get_backend
from repro.sa.backends.queue import ENVELOPE_FORMAT_VERSION
from repro.sa.options import SaOptions
from repro.sa.portfolio import run_portfolio
from repro.sa.transport import (
    Endpoint,
    Fault,
    FaultPlan,
    FaultyEndpoint,
    SocketTransportBackend,
    negotiate_client,
    negotiate_server,
)
from repro.sa.transport import protocol, socket_backend
from repro.sa.transport.faults import FaultInjected
from repro.sa.transport.protocol import (
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HELLO,
    KIND_HELLO_ACK,
    KIND_RESULT,
    KIND_TASK,
    decode_payload,
    encode_frame,
)
from tests.conftest import small_random_instance

#: One portfolio configuration shared by every parity test: small
#: enough to keep the chaos matrix fast, retried/timed tightly enough
#: that every recovery path actually fires within the test budget.
CHAOS_OPTIONS = dict(
    seed=42,
    restarts=4,
    inner_loops=3,
    max_outer_loops=8,
    max_retries=3,
    heartbeat_interval=0.1,
    heartbeat_timeout=1.0,
    backoff_base=0.01,
)

NUM_SITES = 3


@pytest.fixture(scope="module")
def coefficients():
    instance = small_random_instance(5, num_tables=4, max_attributes_per_table=8)
    return build_coefficients(instance, CostParameters())


@pytest.fixture(scope="module")
def serial_baselines(coefficients):
    """The ground truth the whole fault matrix must reproduce bitwise."""
    return {
        prune: run_portfolio(
            coefficients,
            NUM_SITES,
            SaOptions(prune=prune, **CHAOS_OPTIONS),
            backend="serial",
        )
        for prune in (False, True)
    }


def assert_bitwise_identical(result, baseline):
    assert result.objective6 == baseline.objective6
    assert result.best_restart == baseline.best_restart
    np.testing.assert_array_equal(result.x, baseline.x)
    np.testing.assert_array_equal(result.y, baseline.y)


def endpoint_pair():
    left, right = socket_module.socketpair()
    return Endpoint(left), Endpoint(right)


# ----------------------------------------------------------------------
# Frame layer
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        frame = encode_frame(KIND_TASK, task_id="3:0", restart=3, envelope="{}")
        payload = decode_payload(frame[4:])
        assert payload == {
            "kind": KIND_TASK,
            "task_id": "3:0",
            "restart": 3,
            "envelope": "{}",
        }

    def test_identical_messages_are_identical_bytes(self):
        """Sorted-key dumps: the fault harness can target 'the third
        RESULT frame' only because equal payloads encode equally."""
        a = encode_frame(KIND_RESULT, restart=1, envelope="e", task_id="1:0")
        b = encode_frame(KIND_RESULT, task_id="1:0", envelope="e", restart=1)
        assert a == b

    def test_oversize_frame_refused_on_send(self, monkeypatch):
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 32)
        with pytest.raises(TransportError, match="exceeds MAX_FRAME_BYTES"):
            encode_frame(KIND_TASK, envelope="x" * 64)

    @pytest.mark.parametrize(
        "data",
        [b"\xff\xfe garbage", b"[1, 2, 3]", b'{"no": "kind"}', b'"scalar"'],
    )
    def test_decode_payload_rejects_garbage(self, data):
        with pytest.raises(TransportError):
            decode_payload(data)

    def test_endpoint_round_trip_and_ordering(self):
        driver, worker = endpoint_pair()
        try:
            for index in range(3):
                worker.send(KIND_HEARTBEAT, task_id=None, beat=index)
            for index in range(3):
                frame = driver.recv(timeout=1.0)
                assert frame["kind"] == KIND_HEARTBEAT
                assert frame["beat"] == index
        finally:
            driver.close()
            worker.close()

    def test_endpoint_reassembles_split_frames(self):
        """A frame arriving one TCP segment at a time is buffered until
        complete — recv never returns a partial payload."""
        driver, worker = endpoint_pair()
        try:
            frame = encode_frame(KIND_RESULT, restart=2, envelope="abc")
            worker.sock.sendall(frame[:3])
            assert driver.recv(timeout=0.05) is None
            worker.sock.sendall(frame[3:])
            received = driver.recv(timeout=1.0)
            assert received["restart"] == 2
        finally:
            driver.close()
            worker.close()

    def test_recv_timeout_returns_none(self):
        driver, worker = endpoint_pair()
        try:
            assert driver.recv(timeout=0.05) is None
        finally:
            driver.close()
            worker.close()

    def test_peer_close_raises_connection_closed(self):
        driver, worker = endpoint_pair()
        worker.close()
        try:
            with pytest.raises(ConnectionClosedError):
                driver.recv(timeout=1.0)
        finally:
            driver.close()

    def test_corrupt_length_prefix_rejected(self):
        """A length prefix announcing gigabytes is refused instead of
        allocated."""
        driver, worker = endpoint_pair()
        try:
            worker.sock.sendall(b"\xff\xff\xff\xff payload")
            with pytest.raises(TransportError, match="MAX_FRAME_BYTES"):
                driver.recv(timeout=1.0)
        finally:
            driver.close()
            worker.close()


# ----------------------------------------------------------------------
# Version negotiation
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_happy_path_picks_shared_version(self):
        driver, worker = endpoint_pair()
        outcome = {}

        def client():
            outcome["ack"] = negotiate_client(
                worker, ENVELOPE_FORMAT_VERSION, timeout=5.0
            )

        thread = threading.Thread(target=client)
        thread.start()
        try:
            chosen = negotiate_server(
                driver,
                ENVELOPE_FORMAT_VERSION,
                timeout=5.0,
                heartbeat_interval=0.25,
                prune=True,
                lower_bound=12.5,
                incumbent=[99.0, 1],
            )
            thread.join(timeout=5.0)
            assert chosen == protocol.PROTOCOL_VERSION
            ack = outcome["ack"]
            assert ack["kind"] == KIND_HELLO_ACK
            assert ack["protocol_version"] == chosen
            assert ack["heartbeat_interval"] == 0.25
            assert ack["prune"] is True
            assert ack["incumbent"] == [99.0, 1]
        finally:
            driver.close()
            worker.close()

    def test_no_shared_protocol_version_sends_error_frame(self):
        driver, worker = endpoint_pair()
        try:
            worker.send(
                KIND_HELLO,
                protocol_versions=[999],
                envelope_version=ENVELOPE_FORMAT_VERSION,
            )
            with pytest.raises(TransportError, match="no shared protocol"):
                negotiate_server(driver, ENVELOPE_FORMAT_VERSION, timeout=5.0)
            # The worker is told *why* before the socket dies.
            error = worker.recv(timeout=1.0)
            assert error["kind"] == KIND_ERROR
            assert "no shared protocol" in error["message"]
        finally:
            driver.close()
            worker.close()

    def test_envelope_version_mismatch_sends_error_frame(self):
        driver, worker = endpoint_pair()
        try:
            worker.send(
                KIND_HELLO,
                protocol_versions=list(protocol.SUPPORTED_PROTOCOL_VERSIONS),
                envelope_version=ENVELOPE_FORMAT_VERSION + 1,
            )
            with pytest.raises(TransportError, match="envelope format version"):
                negotiate_server(driver, ENVELOPE_FORMAT_VERSION, timeout=5.0)
            error = worker.recv(timeout=1.0)
            assert error["kind"] == KIND_ERROR
        finally:
            driver.close()
            worker.close()

    def test_client_raises_on_rejection(self):
        driver, worker = endpoint_pair()
        try:
            driver.send(KIND_ERROR, message="not today")
            with pytest.raises(TransportError, match="driver rejected"):
                negotiate_client(worker, ENVELOPE_FORMAT_VERSION, timeout=5.0)
        finally:
            driver.close()
            worker.close()


# ----------------------------------------------------------------------
# Fault plans and the faulty endpoint
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                Fault("drop", kind="result", index=1, connection=0),
                Fault("kill-worker", kind="result", index=0, connection=1),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_garbage(self):
        for text in ("not json", "{}", '{"faults": [{"action": "sabotage"}]}'):
            with pytest.raises(OptionsError):
                FaultPlan.from_json(text)

    def test_random_is_deterministic_per_seed(self):
        assert FaultPlan.random(7) == FaultPlan.random(7)
        assert FaultPlan.random(7) != FaultPlan.random(8)
        plan = FaultPlan.random(7, faults=5, connections=3)
        assert len(plan.faults) == 5
        assert all(fault.connection < 3 for fault in plan.faults)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(action="sabotage"),
            dict(action="drop", direction="sideways"),
            dict(action="drop", index=-1),
            dict(action="drop", connection=-2),
            dict(action="delay", delay=-0.5),
        ],
    )
    def test_fault_validation(self, kwargs):
        with pytest.raises(OptionsError):
            Fault(**kwargs)

    def test_endpoint_split_by_action_class(self):
        plan = FaultPlan(
            (
                Fault("drop", connection=0),
                Fault("kill-worker", connection=0),
                Fault("corrupt", connection=1),
            )
        )
        assert [f.action for f in plan.endpoint_faults(0)] == ["drop"]
        assert [f.action for f in plan.worker_faults(0)] == ["kill-worker"]
        assert [f.action for f in plan.endpoint_faults(1)] == ["corrupt"]


class TestFaultyEndpoint:
    def test_drop_on_recv_loses_exactly_the_indexed_frame(self):
        left, right = socket_module.socketpair()
        sender = Endpoint(right)
        receiver = FaultyEndpoint(
            left, [Fault("drop", kind="result", direction="recv", index=0)]
        )
        try:
            sender.send(KIND_RESULT, restart=0)
            sender.send(KIND_RESULT, restart=1)
            frame = receiver.recv(timeout=1.0)
            assert frame["restart"] == 1  # frame #0 silently vanished
        finally:
            sender.close()
            receiver.close()

    def test_duplicate_on_recv_replays_the_frame(self):
        left, right = socket_module.socketpair()
        sender = Endpoint(right)
        receiver = FaultyEndpoint(
            left, [Fault("duplicate", kind="result", direction="recv", index=0)]
        )
        try:
            sender.send(KIND_RESULT, restart=0)
            first = receiver.recv(timeout=1.0)
            second = receiver.recv(timeout=1.0)
            assert first == second
        finally:
            sender.close()
            receiver.close()

    def test_corrupt_on_send_breaks_decoding_not_framing(self):
        """Corruption flips payload bytes but never the length prefix:
        the receiver reads a complete frame and fails to *decode* it."""
        left, right = socket_module.socketpair()
        sender = FaultyEndpoint(
            right, [Fault("corrupt", kind="task", direction="send", index=0)]
        )
        receiver = Endpoint(left)
        try:
            sender.send(KIND_TASK, task_id="0:0", restart=0, envelope="{}")
            with pytest.raises(TransportError):
                receiver.recv(timeout=1.0)
        finally:
            sender.close()
            receiver.close()

    def test_worker_kill_raises_on_matched_send(self):
        left, right = socket_module.socketpair()
        worker = FaultyEndpoint(
            right,
            [Fault("kill-worker", kind="result", direction="recv", index=0)],
            side="worker",
        )
        try:
            worker.send(KIND_HEARTBEAT, task_id=None)  # other kinds pass
            with pytest.raises(FaultInjected):
                worker.send(KIND_RESULT, restart=0, envelope="{}")
        finally:
            worker.close()
            left.close()

    def test_worker_stall_swallows_heartbeats_stickily(self):
        left, right = socket_module.socketpair()
        worker = FaultyEndpoint(
            right,
            [Fault("stall-heartbeat", kind="heartbeat", direction="recv", index=1)],
            side="worker",
        )
        driver = Endpoint(left)
        try:
            worker.send(KIND_HEARTBEAT, beat=0)  # before the stall: delivered
            worker.send(KIND_HEARTBEAT, beat=1)  # stalled...
            worker.send(KIND_HEARTBEAT, beat=2)  # ...stickily
            worker.send(KIND_RESULT, restart=0)  # other kinds still flow
            assert driver.recv(timeout=1.0)["beat"] == 0
            assert driver.recv(timeout=1.0)["kind"] == KIND_RESULT
        finally:
            worker.close()
            driver.close()


# ----------------------------------------------------------------------
# Backend registry + construction
# ----------------------------------------------------------------------
class TestSocketBackendConfig:
    def test_registered(self):
        assert "socket" in backend_names()
        assert isinstance(get_backend("socket"), SocketTransportBackend)
        assert SaOptions(backend="socket").backend == "socket"

    def test_invalid_construction(self):
        with pytest.raises(OptionsError, match="spawn"):
            SocketTransportBackend(spawn="carrier-pigeon")
        with pytest.raises(OptionsError, match="workers"):
            SocketTransportBackend(workers=-1)


# ----------------------------------------------------------------------
# Clean-weather parity (every spawn mode, no faults)
# ----------------------------------------------------------------------
class TestCleanParity:
    def test_thread_spawn_matches_serial(self, coefficients, serial_baselines):
        result = run_portfolio(
            coefficients,
            NUM_SITES,
            SaOptions(**CHAOS_OPTIONS),
            backend=SocketTransportBackend(workers=2, spawn="thread"),
        )
        assert_bitwise_identical(result, serial_baselines[False])
        assert result.executor == "socket"
        assert result.requeue_count == 0
        assert result.worker_failures == 0

    def test_process_spawn_matches_serial(self, coefficients, serial_baselines):
        """One real ``python -m repro.sa.worker`` subprocess round trip."""
        result = run_portfolio(
            coefficients,
            NUM_SITES,
            SaOptions(**CHAOS_OPTIONS),
            backend=SocketTransportBackend(workers=2, spawn="process"),
        )
        assert_bitwise_identical(result, serial_baselines[False])

    def test_workers_zero_is_explicit_degraded_mode(
        self, coefficients, serial_baselines
    ):
        result = run_portfolio(
            coefficients,
            NUM_SITES,
            SaOptions(**CHAOS_OPTIONS),
            backend=SocketTransportBackend(workers=0),
        )
        assert_bitwise_identical(result, serial_baselines[False])

    def test_workers_option_flows_from_sa_options(
        self, coefficients, serial_baselines
    ):
        """``SaOptions(workers=...)`` reaches the registry-constructed
        backend (the CLI's ``--workers`` path)."""
        result = run_portfolio(
            coefficients,
            NUM_SITES,
            SaOptions(workers=0, backend="socket", **CHAOS_OPTIONS),
        )
        assert_bitwise_identical(result, serial_baselines[False])


# ----------------------------------------------------------------------
# The chaos matrix: every fault schedule, prune on and off
# ----------------------------------------------------------------------
CHAOS_PLANS = {
    # One fault per failure family the recovery machinery handles ...
    "drop-result": FaultPlan(
        (Fault("drop", kind="result", direction="recv", index=0, connection=0),)
    ),
    "drop-task": FaultPlan(
        (Fault("drop", kind="task", direction="send", index=0, connection=0),)
    ),
    "delay-result": FaultPlan(
        (
            Fault(
                "delay",
                kind="result",
                direction="recv",
                index=0,
                connection=0,
                delay=0.2,
            ),
        )
    ),
    "duplicate-result": FaultPlan(
        (Fault("duplicate", kind="result", direction="recv", index=0, connection=0),)
    ),
    "duplicate-task": FaultPlan(
        (Fault("duplicate", kind="task", direction="send", index=0, connection=0),)
    ),
    "corrupt-result": FaultPlan(
        (Fault("corrupt", kind="result", direction="recv", index=0, connection=0),)
    ),
    "corrupt-task": FaultPlan(
        (Fault("corrupt", kind="task", direction="send", index=0, connection=0),)
    ),
    "kill-worker": FaultPlan(
        (Fault("kill-worker", kind="result", index=0, connection=1),)
    ),
    "stall-heartbeat": FaultPlan(
        (Fault("stall-heartbeat", kind="heartbeat", index=1, connection=0),)
    ),
    # ... a compound storm hitting three families at once ...
    "storm": FaultPlan(
        (
            Fault("drop", kind="result", direction="recv", index=0, connection=0),
            Fault("kill-worker", kind="result", index=0, connection=1),
            Fault("stall-heartbeat", kind="heartbeat", index=2, connection=0),
        )
    ),
    # ... and seeded random schedules, reproducible from the seed alone.
    "random-7": FaultPlan.random(7),
    "random-19": FaultPlan.random(19),
    "random-23": FaultPlan.random(23),
}

# CI's chaos job fans the suite out over extra fault-plan seeds
# (REPRO_CHAOS_SEED) — more schedules per run, zero nondeterminism.
_EXTRA_CHAOS_SEED = os.environ.get("REPRO_CHAOS_SEED")
if _EXTRA_CHAOS_SEED is not None:
    CHAOS_PLANS[f"random-{_EXTRA_CHAOS_SEED}"] = FaultPlan.random(
        int(_EXTRA_CHAOS_SEED)
    )


@pytest.mark.chaos
class TestChaosParity:
    @pytest.mark.parametrize("prune", [False, True], ids=["noprune", "prune"])
    @pytest.mark.parametrize("name", sorted(CHAOS_PLANS))
    def test_fault_schedule_preserves_bitwise_result(
        self, coefficients, serial_baselines, name, prune
    ):
        backend = SocketTransportBackend(
            workers=2,
            spawn="thread",
            fault_plan=CHAOS_PLANS[name],
            connect_timeout=5.0,
        )
        result = run_portfolio(
            coefficients,
            NUM_SITES,
            SaOptions(prune=prune, **CHAOS_OPTIONS),
            backend=backend,
        )
        assert_bitwise_identical(result, serial_baselines[prune])

    def test_storm_telemetry_counts_recoveries(self, coefficients):
        """The storm must exercise the machinery it claims to: requeues
        granted, a worker failure observed, retried restarts counted."""
        backend = SocketTransportBackend(
            workers=2,
            spawn="thread",
            fault_plan=CHAOS_PLANS["storm"],
            connect_timeout=5.0,
        )
        result = run_portfolio(
            coefficients, NUM_SITES, SaOptions(**CHAOS_OPTIONS), backend=backend
        )
        assert result.requeue_count >= 1
        assert result.retried_restarts >= 1
        assert result.worker_failures >= 1


# ----------------------------------------------------------------------
# Hard-failure paths
# ----------------------------------------------------------------------
class TestFailurePaths:
    def test_exhausted_retry_budget_raises_naming_the_restart(
        self, coefficients
    ):
        """A restart that keeps dying must fail the solve loudly — a
        silently lost restart would change the best-of-N result."""
        options = dict(CHAOS_OPTIONS, max_retries=0, restarts=2)
        plan = FaultPlan(
            (Fault("kill-worker", kind="result", index=0, connection=0),)
        )
        backend = SocketTransportBackend(
            workers=1, spawn="thread", fault_plan=plan, connect_timeout=5.0
        )
        with pytest.raises(
            SolverError, match=r"socket worker failed restart \d+"
        ):
            run_portfolio(
                coefficients, NUM_SITES, SaOptions(**options), backend=backend
            )

    def test_drained_pool_degrades_to_in_driver_execution(
        self, coefficients, serial_baselines, monkeypatch
    ):
        """When no worker ever connects and the spawn budget is spent,
        the driver warns and finishes the portfolio itself — bitwise
        identically."""
        monkeypatch.setattr(
            socket_backend._Driver,
            "_thread_worker",
            staticmethod(lambda host, port, faults: None),
        )
        options = dict(CHAOS_OPTIONS, max_retries=0, heartbeat_interval=0.05)
        backend = SocketTransportBackend(
            workers=2, spawn="thread", connect_timeout=0.2
        )
        with pytest.warns(RuntimeWarning, match="drained"):
            result = run_portfolio(
                coefficients, NUM_SITES, SaOptions(**options), backend=backend
            )
        assert_bitwise_identical(result, serial_baselines[False])


# ----------------------------------------------------------------------
# Telemetry surfacing (satellite: SolveReport metadata + resilience)
# ----------------------------------------------------------------------
class TestTelemetrySurfacing:
    def test_report_metadata_and_resilience_mapping(self):
        instance = small_random_instance(3)
        report = advise(
            SolveRequest(
                instance=instance,
                num_sites=2,
                strategy="sa-portfolio",
                seed=7,
                options=dict(
                    restarts=2, inner_loops=3, max_outer_loops=6, backend="queue"
                ),
            )
        )
        for key in (
            "pruned_restarts",
            "retried_restarts",
            "requeue_count",
            "worker_failures",
        ):
            assert key in report.metadata
        assert report.resilience == {
            "pruned_restarts": 0,
            "retried_restarts": 0,
            "requeue_count": 0,
            "worker_failures": 0,
        }
