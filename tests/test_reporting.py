"""Golden-file and unit tests for the artifact reporting renderers.

The goldens (``tests/fixtures/BENCH_fixture.{md,tex}``) are checked-in
byte-exact renderings of ``tests/fixtures/BENCH_fixture.json`` — a
fixture deliberately riddled with markdown- and LaTeX-active characters
(pipes, underscores, asterisks, ``%``, ``&``, ``^``, ``~``, braces), a
missing-metric cell, and a ``null`` metric.  Any renderer change shows
up as a diff against the golden, which is the point: published tables
must be reproducible byte-for-byte from the persisted artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import ArtifactError
from repro.reporting import (
    RENDERERS,
    column_order,
    escape_latex,
    escape_markdown,
    load_artifact,
    render_latex,
    render_markdown,
    write_report,
)

FIXTURES = Path(__file__).parent / "fixtures"
FIXTURE_JSON = FIXTURES / "BENCH_fixture.json"


@pytest.fixture()
def artifact():
    return load_artifact(FIXTURE_JSON)


# ----------------------------------------------------------------------
# Golden files
# ----------------------------------------------------------------------
class TestGoldens:
    def test_markdown_matches_golden_byte_for_byte(self, artifact):
        golden = (FIXTURES / "BENCH_fixture.md").read_text()
        assert render_markdown(artifact) == golden

    def test_latex_matches_golden_byte_for_byte(self, artifact):
        golden = (FIXTURES / "BENCH_fixture.tex").read_text()
        assert render_latex(artifact) == golden

    def test_rendering_is_deterministic(self, artifact):
        for render in RENDERERS.values():
            assert render(artifact) == render(artifact)

    def test_write_report_reproduces_the_goldens(self, artifact, tmp_path):
        paths = write_report(artifact, tmp_path, stem="BENCH_fixture")
        assert [p.name for p in paths] == [
            "BENCH_fixture.md", "BENCH_fixture.tex",
        ]
        for path in paths:
            assert path.read_text() == (FIXTURES / path.name).read_text()

    def test_write_report_default_stem_is_the_family(self, artifact, tmp_path):
        paths = write_report(artifact, tmp_path, formats=("markdown",))
        assert paths[0].name == "BENCH_service.md"


# ----------------------------------------------------------------------
# Escaping
# ----------------------------------------------------------------------
class TestEscaping:
    def test_markdown_escapes_table_breakers(self):
        assert escape_markdown("a|b") == "a\\|b"
        assert escape_markdown("snake_case*bold*`code`") == (
            "snake\\_case\\*bold\\*\\`code\\`"
        )
        assert escape_markdown("back\\slash") == "back\\\\slash"

    def test_latex_escapes_active_characters(self):
        assert escape_latex("50% & more") == r"50\% \& more"
        assert escape_latex("a_b^c~d") == (
            r"a\_b\textasciicircum{}c\textasciitilde{}d"
        )
        assert escape_latex("{$#}") == r"\{\$\#\}"
        assert escape_latex("a\\b") == r"a\textbackslash{}b"

    def test_newlines_flatten_to_spaces(self):
        assert escape_markdown("two\nlines") == "two lines"
        assert escape_latex("two\nlines") == "two lines"


# ----------------------------------------------------------------------
# Table shape: alignment, missing cells, column discovery
# ----------------------------------------------------------------------
class TestTableShape:
    def test_numeric_columns_right_align_in_markdown(self, artifact):
        separator = render_markdown(artifact).splitlines()[5]
        cells = separator.strip("|").split("|")
        # metric / ratio / detail / note: only ratio is numeric.
        assert [cell.endswith(":") for cell in cells] == [
            False, True, False, False,
        ]

    def test_numeric_columns_right_align_in_latex(self, artifact):
        assert r"\begin{tabular}{lrll}" in render_latex(artifact)

    def test_missing_metric_renders_a_placeholder_cell(self, artifact):
        markdown = render_markdown(artifact)
        latex = render_latex(artifact)
        # Row 2 has no "note" key at all; row 3 carries an explicit null.
        assert "—" in markdown
        assert " -- " in latex or "& -- " in latex

    def test_column_order_is_first_seen(self):
        rows = [{"b": 1, "a": 2}, {"a": 3, "c": 4}]
        assert column_order(rows) == ["b", "a", "c"]

    def test_rows_with_extra_keys_widen_the_table(self):
        artifact = {
            "bench": "x", "profile": "p", "seed": 0,
            "generated_at": "t",
            "rows": [{"metric": "m", "ratio": 1.0, "detail": "d",
                      "extra": 7}],
        }
        markdown = render_markdown(artifact)
        assert "extra" in markdown.splitlines()[4]

    def test_empty_rows_still_render_a_header(self):
        artifact = {
            "bench": "x", "profile": "p", "seed": 0,
            "generated_at": "t", "rows": [],
        }
        markdown = render_markdown(artifact)
        assert markdown.startswith("## x — profile p, seed 0")
        assert render_latex(artifact).startswith(r"\begin{table}[ht]")


# ----------------------------------------------------------------------
# Loading and validation failures
# ----------------------------------------------------------------------
class TestLoadArtifact:
    def test_loads_a_mapping_in_place(self, artifact):
        assert load_artifact(artifact)["bench"] == "service"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(tmp_path / "BENCH_absent.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{nope")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_unknown_family_raises(self, tmp_path, artifact):
        payload = dict(artifact)
        payload["bench"] = "mystery"
        path = tmp_path / "BENCH_mystery.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactError, match="unknown artifact family"):
            load_artifact(path)

    def test_family_pin_overrides_the_tag(self, artifact):
        with pytest.raises(ArtifactError):
            load_artifact(artifact, family="drift")

    def test_shape_violation_names_the_json_path(self, artifact):
        payload = dict(artifact)
        payload["seed"] = "not-an-integer"
        with pytest.raises(ArtifactError, match=r"\$\.seed"):
            load_artifact(payload)
