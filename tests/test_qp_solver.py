"""The QP partitioner: exactness against brute force, options, limits."""

import numpy as np
import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.exceptions import SolverError
from repro.partition.assignment import single_site_partitioning
from repro.qp.solver import QpPartitioner, solve_qp, _canonical_site_order
from tests.conftest import brute_force_optimum, small_random_instance


class TestExactness:
    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    @pytest.mark.parametrize("num_sites", [2, 3])
    def test_matches_brute_force_pure_cost(self, seed, num_sites):
        """With lambda = 1 (pure cost) the QP must find the enumerated
        global optimum of objective (4)."""
        instance = small_random_instance(seed, num_transactions=3, num_tables=2)
        parameters = CostParameters(load_balance_lambda=1.0)
        coefficients = build_coefficients(instance, parameters)
        expected, _, _ = brute_force_optimum(coefficients, num_sites)
        result = QpPartitioner(coefficients, num_sites).solve(
            backend="scipy", gap=1e-9
        )
        assert result.objective == pytest.approx(expected, rel=1e-9)
        assert result.proven_optimal

    def test_scratch_backend_agrees_with_scipy(self):
        instance = small_random_instance(5, num_transactions=2, num_tables=2)
        parameters = CostParameters(load_balance_lambda=1.0)
        coefficients = build_coefficients(instance, parameters)
        scratch = QpPartitioner(coefficients, 2).solve(backend="scratch", gap=1e-9)
        scipy_result = QpPartitioner(coefficients, 2).solve(
            backend="scipy", gap=1e-9
        )
        assert scratch.objective == pytest.approx(scipy_result.objective, rel=1e-7)


class TestOptions:
    def test_single_site_equals_baseline(self, tiny_coefficients):
        result = QpPartitioner(tiny_coefficients, 1).solve(backend="scipy")
        baseline = single_site_partitioning(tiny_coefficients)
        assert result.objective == pytest.approx(baseline.objective)

    def test_disjoint_solution_has_one_replica_each(self, tiny_coefficients):
        result = QpPartitioner(
            tiny_coefficients, 2, allow_replication=False
        ).solve(backend="scipy")
        assert result.is_disjoint

    def test_disjoint_never_cheaper_than_replicated_blended(self, tiny_coefficients):
        """The disjoint feasible set is a subset: its optimal blended
        objective (6) can never beat the replicated one."""
        from repro.costmodel.evaluator import SolutionEvaluator

        evaluator = SolutionEvaluator(tiny_coefficients)
        replicated = QpPartitioner(tiny_coefficients, 2).solve(
            backend="scipy", gap=1e-9
        )
        disjoint = QpPartitioner(
            tiny_coefficients, 2, allow_replication=False
        ).solve(backend="scipy", gap=1e-9)
        assert evaluator.objective6(replicated.x, replicated.y) <= (
            evaluator.objective6(disjoint.x, disjoint.y) + 1e-6
        )

    def test_conflicting_parameters_rejected(self, tiny_coefficients):
        with pytest.raises(SolverError, match="conflicting"):
            QpPartitioner(
                tiny_coefficients, 2,
                parameters=CostParameters(network_penalty=3.0),
            )

    def test_metadata_reports_model_size(self, tiny_coefficients):
        result = QpPartitioner(tiny_coefficients, 2).solve(backend="scipy")
        assert result.metadata["variables"] > 0
        assert result.metadata["backend"] == "scipy-highs"

    def test_warm_start_site_count_checked(self, tiny_coefficients):
        partitioner = QpPartitioner(tiny_coefficients, 3)
        other = QpPartitioner(tiny_coefficients, 2).solve(backend="scipy")
        with pytest.raises(SolverError, match="sites"):
            partitioner.solve(warm_start=other)

    def test_warm_start_scratch_backend(self):
        instance = small_random_instance(9, num_transactions=2, num_tables=2)
        coefficients = build_coefficients(
            instance, CostParameters(load_balance_lambda=1.0)
        )
        first = QpPartitioner(coefficients, 2).solve(backend="scipy", gap=1e-9)
        warmed = QpPartitioner(coefficients, 2).solve(
            backend="scratch", gap=1e-9, warm_start=first
        )
        assert warmed.objective == pytest.approx(first.objective, rel=1e-7)


class TestCanonicalSiteOrder:
    def test_orders_by_first_transaction(self):
        x = np.array([[0, 1], [1, 0]], dtype=bool)
        y = np.array([[1, 0], [0, 1], [1, 1]], dtype=bool)
        cx, cy = _canonical_site_order(x, y)
        assert cx[0, 0]  # transaction 0 now on site 0
        np.testing.assert_array_equal(cy, y[:, [1, 0]])

    def test_empty_sites_sorted_last(self):
        x = np.array([[0, 1, 0]], dtype=bool)
        y = np.ones((2, 3), dtype=bool)
        cx, _ = _canonical_site_order(x, y)
        assert cx[0, 0]


def test_solve_qp_convenience(tiny_instance):
    result = solve_qp(tiny_instance, 2, backend="scipy")
    assert result.solver == "qp"
    assert result.num_sites == 2
