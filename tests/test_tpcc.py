"""The TPC-C instance: structure, conventions and headline results."""

import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.instances.tpcc import tpcc_instance, tpcc_schema, tpcc_workload
from repro.partition.assignment import single_site_partitioning
from repro.qp.solver import QpPartitioner
from repro.sa.options import SaOptions
from repro.sa.solver import SaPartitioner


@pytest.fixture(scope="module")
def instance():
    return tpcc_instance()


class TestSchemaStructure:
    def test_92_attributes_9_tables(self, instance):
        """The paper's |A| = 92 (Table 3)."""
        assert instance.num_attributes == 92
        assert len(instance.schema) == 9

    def test_table_attribute_counts(self, instance):
        expected = {
            "Warehouse": 9, "District": 11, "Customer": 21, "History": 8,
            "NewOrder": 3, "Order": 8, "OrderLine": 10, "Item": 5, "Stock": 17,
        }
        for table, count in expected.items():
            assert len(instance.schema.table(table)) == count

    def test_five_transactions(self, instance):
        assert instance.num_transactions == 5
        names = {t.name for t in instance.transactions}
        assert names == {
            "NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel",
        }

    def test_customer_data_is_widest(self, instance):
        widths = {a.qualified_name: a.width for a in instance.attributes}
        assert max(widths, key=widths.get) == "Customer.C_DATA"


class TestStatisticsConventions:
    def test_queries_default_to_one_row(self, instance):
        query = instance.workload.transaction("NewOrder").queries[0]
        assert query.rows_for("Warehouse") == 1.0

    def test_iterated_queries_use_ten_rows(self, instance):
        for name in ("NewOrder.getItems", "NewOrder.getStock",
                     "Payment.getCustomerByLastName",
                     "OrderStatus.getOrderLines", "Delivery.getNewOrder",
                     "StockLevel.countLowStock"):
            transaction = instance.workload.transaction_of(name)
            query = next(q for q in transaction if q.name == name)
            touched = next(iter(query.tables))
            assert query.rows_for(touched) == 10.0, name

    def test_all_frequencies_equal_one(self, instance):
        assert all(q.frequency == 1.0 for q in instance.queries)

    def test_updates_are_split(self, instance):
        names = {q.name for q in instance.queries}
        assert "NewOrder.incrementNextOrderId:read" in names
        assert "NewOrder.incrementNextOrderId:write" in names

    def test_write_only_counters_not_in_read_sets(self, instance):
        """Table 4 fidelity: S_YTD / S_ORDER_CNT / S_REMOTE_CNT are not
        read by New-Order (they are pure increments)."""
        new_order = instance.workload.transaction("NewOrder")
        assert "Stock.S_YTD" not in new_order.read_attributes
        assert "Stock.S_ORDER_CNT" not in new_order.read_attributes
        assert "Stock.S_QUANTITY" in new_order.read_attributes  # via SELECT

    def test_item_image_id_unread(self, instance):
        """I_IM_ID is accessed by no TPC-C transaction (it floats freely
        in the paper's Table 4)."""
        for transaction in instance.workload:
            assert "Item.I_IM_ID" not in transaction.read_attributes
            assert "Item.I_IM_ID" not in transaction.written_attributes


class TestHeadlineResults:
    """The paper's key TPC-C findings, as shape assertions."""

    @pytest.fixture(scope="class")
    def coefficients(self, instance):
        return build_coefficients(instance, CostParameters())

    @pytest.fixture(scope="class")
    def baseline(self, coefficients):
        return single_site_partitioning(coefficients).objective

    @pytest.fixture(scope="class")
    def qp_by_sites(self, coefficients):
        results = {}
        for num_sites in (2, 3, 4):
            results[num_sites] = QpPartitioner(coefficients, num_sites).solve(
                time_limit=60, backend="scipy"
            )
        return results

    def test_partitioning_reduces_cost_substantially(self, qp_by_sites, baseline):
        """Paper: 37% reduction; we accept anything over 20%."""
        reduction = 1 - qp_by_sites[2].objective / baseline
        assert reduction > 0.20

    def test_little_gain_beyond_two_sites(self, qp_by_sites):
        """Paper Table 5: S=3,4 barely improve on S=2."""
        best = min(r.objective for r in qp_by_sites.values())
        assert qp_by_sites[2].objective <= best * 1.05

    def test_solution_uses_replication(self, qp_by_sites):
        assert qp_by_sites[3].replication_factor > 1.0

    def test_disjoint_is_worse(self, coefficients, qp_by_sites):
        disjoint = QpPartitioner(
            coefficients, 2, allow_replication=False
        ).solve(time_limit=60, backend="scipy")
        ratio = qp_by_sites[2].objective / disjoint.objective
        assert ratio < 0.9  # paper: 64%

    def test_local_placement_cheaper(self, instance, qp_by_sites):
        local = build_coefficients(
            instance, CostParameters().with_local_placement()
        )
        local_result = QpPartitioner(local, 2).solve(time_limit=60, backend="scipy")
        assert local_result.objective <= qp_by_sites[2].objective + 1e-6

    def test_sa_close_to_qp(self, coefficients, qp_by_sites):
        """Paper Table 3: SA within a few percent of QP on TPC-C."""
        sa = SaPartitioner(
            coefficients, 2,
            options=SaOptions(inner_loops=15, max_outer_loops=25, seed=1),
        ).solve()
        assert sa.objective <= qp_by_sites[2].objective * 1.10


def test_schema_and_workload_independent_construction():
    schema = tpcc_schema()
    workload = tpcc_workload()
    workload.validate_against(schema)
    assert len(workload) == 5
