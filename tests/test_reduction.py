"""Reasonable cuts (lossless grouping) and the 20/80 refinement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.instances.tpcc import tpcc_instance
from repro.qp.solver import QpPartitioner
from repro.reduction.cuts import attribute_groups, group_instance
from repro.reduction.heavy import IterativeRefinement, solve_iterative
from tests.conftest import small_random_instance


class TestAttributeGroups:
    def test_groups_partition_attributes(self, tiny_instance):
        groups = attribute_groups(tiny_instance)
        flattened = sorted(index for group in groups for index in group)
        assert flattened == list(range(tiny_instance.num_attributes))

    def test_identically_accessed_attributes_grouped(self, tiny_instance):
        groups = attribute_groups(tiny_instance)
        index = tiny_instance.attribute_index
        group_of = {}
        for g, members in enumerate(groups):
            for member in members:
                group_of[member] = g
        # Narrow.key and Narrow.value differ (Writer.find reads only key).
        assert group_of[index["Narrow.key"]] != group_of[index["Narrow.value"]]

    def test_tpcc_reduction_is_substantial(self):
        instance = tpcc_instance()
        groups = attribute_groups(instance)
        assert len(groups) < instance.num_attributes * 0.6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_groups_never_cross_tables(self, seed):
        instance = small_random_instance(seed)
        for group in attribute_groups(instance):
            tables = {instance.attributes[a].table for a in group}
            assert len(tables) == 1


class TestGroupedInstance:
    def test_grouped_widths_sum(self, tiny_instance):
        grouped = group_instance(tiny_instance)
        assert grouped.grouped.schema.total_width == pytest.approx(
            tiny_instance.schema.total_width
        )

    @pytest.mark.parametrize("seed", [0, 2, 4])
    def test_grouping_is_lossless(self, seed):
        """QP optimum on the grouped instance expands to the same cost
        as solving the original directly."""
        instance = small_random_instance(seed)
        parameters = CostParameters(load_balance_lambda=1.0)
        coefficients = build_coefficients(instance, parameters)
        direct = QpPartitioner(coefficients, 2).solve(backend="scipy", gap=1e-9)
        grouped = group_instance(instance)
        grouped_result = QpPartitioner(
            grouped.grouped, 2, parameters=parameters
        ).solve(backend="scipy", gap=1e-9)
        expanded = grouped.expand(grouped_result, coefficients)
        assert expanded.objective == pytest.approx(direct.objective, rel=1e-9)
        assert expanded.solver.endswith("+cuts")

    def test_expand_replicates_group_placement(self, tiny_instance):
        grouped = group_instance(tiny_instance)
        parameters = CostParameters()
        result = QpPartitioner(
            grouped.grouped, 2, parameters=parameters
        ).solve(backend="scipy")
        expanded = grouped.expand(result)
        for g_index, members in enumerate(grouped.groups):
            for member in members:
                np.testing.assert_array_equal(
                    expanded.y[member], result.y[g_index]
                )

    def test_reduction_ratio(self, tiny_instance):
        grouped = group_instance(tiny_instance)
        assert 0 < grouped.reduction_ratio <= 1.0


class TestHeavyFirst:
    def test_heavy_transactions_sorted_by_load(self):
        instance = small_random_instance(3, num_transactions=10)
        refinement = IterativeRefinement(instance, 2, heavy_fraction=0.2)
        heavy = refinement.heavy_transactions()
        assert len(heavy) == 2
        loads = refinement.transaction_loads()
        lightest_heavy = min(loads[t] for t in heavy)
        heaviest_light = max(
            (loads[t] for t in range(10) if t not in heavy), default=0.0
        )
        assert lightest_heavy >= heaviest_light

    def test_solve_is_feasible_and_reports_metadata(self):
        instance = small_random_instance(6, num_transactions=8)
        result = solve_iterative(instance, 2)
        assert result.solver == "qp-heavy"
        assert len(result.metadata["heavy_transactions"]) == 2
        assert "stage1_objective" in result.metadata

    def test_final_qp_not_worse_than_stage2(self):
        instance = small_random_instance(8, num_transactions=6)
        parameters = CostParameters(load_balance_lambda=1.0)
        stage2 = solve_iterative(instance, 2, parameters=parameters)
        refined = solve_iterative(
            instance, 2, parameters=parameters, final_qp=True
        )
        assert refined.objective <= stage2.objective + 1e-6
