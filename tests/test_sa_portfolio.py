"""The multi-start annealing portfolio and its options plumbing."""

import time

import numpy as np
import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.exceptions import OptionsError, SolverError
from repro.sa.options import SaOptions
from repro.sa.portfolio import derive_restart_seeds, run_portfolio
from repro.sa.solver import SaPartitioner, solve_sa
from tests.conftest import small_random_instance

FAST = dict(inner_loops=6, max_outer_loops=6)


@pytest.fixture(scope="module")
def coefficients():
    instance = small_random_instance(5, num_tables=4, max_attributes_per_table=8)
    return build_coefficients(instance, CostParameters())


class TestSeedDerivation:
    def test_restart_zero_keeps_master_seed(self):
        assert derive_restart_seeds(42, 4)[0] == 42

    def test_seeds_pairwise_distinct(self):
        seeds = derive_restart_seeds(7, 64)
        assert len(set(seeds)) == 64

    def test_deterministic_per_master_seed(self):
        assert derive_restart_seeds(7, 8) == derive_restart_seeds(7, 8)
        assert derive_restart_seeds(7, 8) != derive_restart_seeds(8, 8)

    def test_prefix_stable_as_restarts_grow(self):
        assert derive_restart_seeds(3, 8)[:4] == derive_restart_seeds(3, 4)

    def test_none_master_seed_gives_none_first(self):
        seeds = derive_restart_seeds(None, 3)
        assert seeds[0] is None
        assert len(set(seeds[1:])) == 2

    def test_invalid_restarts_rejected(self):
        with pytest.raises(SolverError, match="restarts"):
            derive_restart_seeds(0, 0)


class TestDeterminism:
    def test_same_result_for_jobs_1_and_4(self, coefficients):
        results = {}
        for jobs in (1, 4):
            portfolio = run_portfolio(
                coefficients, 3,
                SaOptions(seed=11, restarts=4, jobs=jobs, **FAST),
            )
            results[jobs] = portfolio
        assert results[1].objective6 == results[4].objective6
        assert results[1].best_restart == results[4].best_restart
        np.testing.assert_array_equal(results[1].x, results[4].x)
        np.testing.assert_array_equal(results[1].y, results[4].y)
        assert results[1].restart_objectives == results[4].restart_objectives

    def test_restarts_1_matches_single_run(self, coefficients):
        options = SaOptions(seed=11, **FAST)
        single = SaPartitioner(coefficients, 3, options=options).solve()
        portfolio = SaPartitioner(
            coefficients, 3,
            options=SaOptions(seed=11, restarts=1, jobs=1, **FAST),
        ).solve()
        assert portfolio.objective == single.objective
        np.testing.assert_array_equal(portfolio.x, single.x)
        np.testing.assert_array_equal(portfolio.y, single.y)

    def test_best_of_n_never_worse_than_master_seed_run(self, coefficients):
        """Restart 0 reuses the master seed, so best-of-N <= single run."""
        single = SaPartitioner(
            coefficients, 3, options=SaOptions(seed=13, **FAST)
        ).solve()
        portfolio = SaPartitioner(
            coefficients, 3,
            options=SaOptions(seed=13, restarts=4, **FAST),
        ).solve()
        assert (
            portfolio.metadata["objective6"]
            <= single.metadata["objective6"] + 1e-9
        )

    def test_best_restart_is_argmin_of_objectives(self, coefficients):
        portfolio = run_portfolio(
            coefficients, 3, SaOptions(seed=2, restarts=5, **FAST)
        )
        objectives = portfolio.restart_objectives
        assert portfolio.objective6 == min(objectives)
        assert portfolio.best_restart == objectives.index(min(objectives))


class TestPortfolioFacade:
    def test_metadata_records_portfolio(self, coefficients):
        result = SaPartitioner(
            coefficients, 3,
            options=SaOptions(seed=1, restarts=3, jobs=2, **FAST),
        ).solve()
        assert result.solver == "sa"
        assert result.metadata["restarts"] == 3
        assert result.metadata["jobs"] == 2
        assert len(result.metadata["restart_seeds"]) == 3
        assert len(set(result.metadata["restart_seeds"])) == 3
        assert result.metadata["executor"] in ("serial", "process", "thread")
        assert result.metadata["iterations"] > 0

    def test_solve_sa_restart_overrides(self):
        instance = small_random_instance(5, num_tables=4, max_attributes_per_table=8)
        result = solve_sa(
            instance, 2,
            options=SaOptions(**FAST),
            seed=0, restarts=2, jobs=1,
        )
        assert result.metadata["restarts"] == 2

    def test_disjoint_portfolio(self, coefficients):
        result = SaPartitioner(
            coefficients, 2,
            options=SaOptions(seed=4, restarts=3, disjoint=True, **FAST),
        ).solve()
        assert result.metadata["restarts"] == 3
        assert (result.y.sum(axis=1) == 1).all()


class TestTimeBudget:
    def test_expired_budget_still_returns_solution(self, coefficients):
        """A tiny portfolio budget returns the guarded collapsed layout."""
        portfolio = run_portfolio(
            coefficients, 3,
            SaOptions(
                seed=0, restarts=6, portfolio_time_limit=1e-6,
                inner_loops=50, max_outer_loops=50,
            ),
        )
        assert portfolio.outcomes  # restart 0 always runs
        assert np.isfinite(portfolio.objective6)
        assert portfolio.cancelled >= 1

    def test_parallel_degenerate_budget_bounded_and_counted(self, coefficients):
        """Even when the pool outlasts the budget and every future is
        cancelled, the inline restart-0 fallback exits through the
        collapsed guard (bounded, no unbudgeted full anneal) and the
        outcome/cancelled accounting stays consistent."""
        started = time.perf_counter()
        portfolio = run_portfolio(
            coefficients, 3,
            SaOptions(
                seed=9, restarts=4, jobs=2, portfolio_time_limit=1e-9,
                inner_loops=2000, max_outer_loops=2000, patience=2000,
            ),
        )
        elapsed = time.perf_counter() - started
        assert portfolio.outcomes
        assert np.isfinite(portfolio.objective6)
        assert len(portfolio.outcomes) + portfolio.cancelled == 4
        # Bounded: nothing ran an unbudgeted 2000x2000-iteration anneal.
        assert elapsed < 60.0

    def test_parallel_budget_cancels_pending(self, coefficients):
        portfolio = run_portfolio(
            coefficients, 3,
            SaOptions(
                seed=0, restarts=8, jobs=2, portfolio_time_limit=0.05,
                inner_loops=200, max_outer_loops=200, patience=200,
            ),
        )
        assert np.isfinite(portfolio.objective6)
        assert len(portfolio.outcomes) + portfolio.cancelled == 8


class TestOptionsValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(restarts=0), "restarts"),
            (dict(restarts=-3), "restarts"),
            (dict(jobs=0), "jobs"),
            (dict(jobs=-1), "jobs"),
            (dict(portfolio_time_limit=0.0), "portfolio_time_limit"),
            (dict(portfolio_time_limit=-5.0), "portfolio_time_limit"),
            (dict(time_limit=-1.0), "time_limit"),
            (dict(exact_time_limit=0.0), "exact_time_limit"),
            (dict(patience=0), "patience"),
            (dict(inner_loops=0), "inner_loops"),
        ],
    )
    def test_bad_options_raise_eagerly(self, kwargs, match):
        with pytest.raises(OptionsError, match=match):
            SaOptions(**kwargs)

    def test_options_error_is_a_solver_error(self):
        with pytest.raises(SolverError):
            SaOptions(jobs=-1)

    def test_partitioner_validates_before_running(self, coefficients):
        """SaPartitioner re-validates eagerly — construction fails, not
        ``solve()`` minutes in (object.__new__ dodges __post_init__ to
        emulate options arriving from a deserialisation path)."""
        options = SaOptions()
        broken = object.__new__(SaOptions)
        object.__setattr__(broken, "__dict__", dict(options.__dict__))
        object.__setattr__(broken, "restarts", -2)
        with pytest.raises(OptionsError, match="restarts"):
            SaPartitioner(coefficients, 2, options=broken)

    def test_zero_time_limit_still_legal(self):
        """time_limit=0 forces the immediate-timeout exit path used by
        the annealer guard tests; it must stay constructible."""
        assert SaOptions(time_limit=0.0).time_limit == 0.0
