"""JSON round-trip tests, including a hypothesis property."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InstanceError
from repro.model.serialize import (
    dump_instance,
    instance_from_dict,
    instance_to_dict,
    load_instance,
)
from tests.conftest import small_random_instance


def _assert_instances_equal(a, b):
    assert a.name == b.name
    assert [t.name for t in a.schema.tables] == [t.name for t in b.schema.tables]
    assert [x.qualified_name for x in a.attributes] == [
        x.qualified_name for x in b.attributes
    ]
    assert [x.width for x in a.attributes] == [x.width for x in b.attributes]
    for ta, tb in zip(a.workload, b.workload):
        assert ta.name == tb.name
        for qa, qb in zip(ta, tb):
            assert qa.name == qb.name
            assert qa.kind == qb.kind
            assert qa.attributes == qb.attributes
            assert dict(qa.rows) == dict(qb.rows)
            assert qa.frequency == qb.frequency


def test_round_trip_tiny(tiny_instance):
    payload = instance_to_dict(tiny_instance)
    rebuilt = instance_from_dict(payload)
    _assert_instances_equal(tiny_instance, rebuilt)


def test_payload_is_json_compatible(tiny_instance):
    payload = instance_to_dict(tiny_instance)
    rebuilt = instance_from_dict(json.loads(json.dumps(payload)))
    _assert_instances_equal(tiny_instance, rebuilt)


def test_file_round_trip(tiny_instance, tmp_path):
    path = tmp_path / "instance.json"
    dump_instance(tiny_instance, path)
    rebuilt = load_instance(path)
    _assert_instances_equal(tiny_instance, rebuilt)


def test_rejects_unknown_version(tiny_instance):
    payload = instance_to_dict(tiny_instance)
    payload["format_version"] = 999
    with pytest.raises(InstanceError, match="format version"):
        instance_from_dict(payload)


def test_rejects_malformed_payload():
    with pytest.raises(InstanceError, match="malformed"):
        instance_from_dict({"format_version": 1, "schema": {}})


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_round_trip_random_instances(seed):
    instance = small_random_instance(seed)
    rebuilt = instance_from_dict(
        json.loads(json.dumps(instance_to_dict(instance)))
    )
    _assert_instances_equal(instance, rebuilt)
