"""The mini-SQL lexer, parser and workload loader."""

import pytest

from repro.exceptions import ParseError, SchemaError
from repro.sqlio.ast_nodes import CreateTable, Delete, Insert, Select, Update
from repro.sqlio.lexer import TokenKind, tokenize
from repro.sqlio.parser import parse_statements
from repro.sqlio.workload_loader import (
    load_instance_from_sql,
    parse_schema_sql,
    parse_workload_sql,
    type_width,
)

SCHEMA_SQL = """
CREATE TABLE warehouse (
    w_id INT,
    w_name VARCHAR(10),
    w_tax DECIMAL(4,4),
    w_ytd DECIMAL(12,2)
);
CREATE TABLE customer (c_id INT, c_w_id INT, c_last VARCHAR(16),
                       c_balance DECIMAL(12,2), c_data VARCHAR(500));
"""


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.is_keyword("select") for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("Foo_Bar")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].value == "Foo_Bar"

    def test_numbers_and_strings(self):
        tokens = tokenize("12 3.5 'text'")
        assert tokens[0].value == "12"
        assert tokens[1].value == "3.5"
        assert tokens[2].kind is TokenKind.STRING

    def test_comments_stripped_by_default(self):
        tokens = tokenize("SELECT -- hidden\n x")
        assert all(t.kind is not TokenKind.COMMENT for t in tokens)

    def test_comments_kept_on_request(self):
        tokens = tokenize("-- note\nSELECT x", keep_comments=True)
        assert tokens[0].kind is TokenKind.COMMENT
        assert tokens[0].value == "note"

    def test_block_comments(self):
        tokens = tokenize("SELECT /* gone */ x")
        assert [t.value for t in tokens[:-1]] == ["select", "x"]

    def test_two_char_operators(self):
        tokens = tokenize("a <= b <> c")
        values = [t.value for t in tokens if t.kind is TokenKind.PUNCT]
        assert values == ["<=", "<>"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError, match="unterminated string"):
            tokenize("'oops")

    def test_error_reports_location(self):
        with pytest.raises(ParseError, match="line 2"):
            tokenize("SELECT x\n  @")


class TestParser:
    def test_create_table(self):
        statements = parse_statements(SCHEMA_SQL)
        assert len(statements) == 2
        create = statements[0]
        assert isinstance(create, CreateTable)
        assert create.name == "warehouse"
        assert [c.name for c in create.columns] == [
            "w_id", "w_name", "w_tax", "w_ytd",
        ]
        assert create.columns[1].type_args == (10,)

    def test_select_with_where_and_order(self):
        statement = parse_statements(
            "SELECT a, t.b FROM t WHERE c = ? AND d > 3 ORDER BY e DESC;"
        )[0]
        assert isinstance(statement, Select)
        assert statement.tables == ("t",)
        assert [str(c) for c in statement.columns] == ["a", "t.b"]
        assert {c.name for c in statement.where_columns} == {"c", "d"}
        assert {c.name for c in statement.extra_columns} == {"e"}

    def test_select_star(self):
        statement = parse_statements("SELECT * FROM t;")[0]
        assert statement.star

    def test_select_join_with_on(self):
        statement = parse_statements(
            "SELECT a FROM t JOIN u ON t.k = u.k WHERE u.v = 1;"
        )[0]
        assert statement.tables == ("t", "u")
        assert {str(c) for c in statement.extra_columns} == {"t.k", "u.k"}

    def test_select_aggregate(self):
        statement = parse_statements(
            "SELECT COUNT(DISTINCT s_i_id) FROM stock WHERE s_w_id = ?;"
        )[0]
        assert {c.name for c in statement.columns} == {"s_i_id"}

    def test_table_alias(self):
        statement = parse_statements("SELECT c.x FROM cust c WHERE c.y = 1;")[0]
        assert statement.aliases["c"] == "cust"

    def test_update(self):
        statement = parse_statements(
            "UPDATE t SET a = a + 1, b = c WHERE k = ?;"
        )[0]
        assert isinstance(statement, Update)
        assert [a.column.name for a in statement.assignments] == ["a", "b"]
        assert [c.name for c in statement.assignments[0].rhs_columns] == ["a"]
        assert [c.name for c in statement.assignments[1].rhs_columns] == ["c"]
        assert [c.name for c in statement.where_columns] == ["k"]

    def test_insert_with_columns(self):
        statement = parse_statements(
            "INSERT INTO t (a, b) VALUES (?, ?);"
        )[0]
        assert isinstance(statement, Insert)
        assert statement.columns == ("a", "b")

    def test_insert_all_columns(self):
        statement = parse_statements("INSERT INTO t VALUES (1, 2, 3);")[0]
        assert statement.columns == ()

    def test_delete(self):
        statement = parse_statements("DELETE FROM t WHERE id = 4;")[0]
        assert isinstance(statement, Delete)
        assert [c.name for c in statement.where_columns] == ["id"]

    def test_garbage_rejected(self):
        with pytest.raises(ParseError, match="statement start"):
            parse_statements("DROP TABLE t;")


class TestTypeWidths:
    @pytest.mark.parametrize(
        "name,args,width",
        [
            ("int", (), 4.0),
            ("bigint", (), 8.0),
            ("varchar", (24,), 24.0),
            ("char", (), 30.0),
            ("decimal", (12, 2), 7.0),
            ("decimal", (), 8.0),
            ("timestamp", (), 8.0),
            ("text", (), 100.0),
        ],
    )
    def test_widths(self, name, args, width):
        assert type_width(name, args) == width

    def test_unknown_type(self):
        with pytest.raises(SchemaError, match="unknown SQL type"):
            type_width("geometry", ())


class TestSchemaLoader:
    def test_builds_schema_with_widths(self):
        schema = parse_schema_sql(SCHEMA_SQL)
        assert schema.table("warehouse").attribute("w_name").width == 10.0
        assert schema.table("customer").attribute("c_data").width == 500.0

    def test_rejects_dml_in_schema(self):
        with pytest.raises(ParseError, match="CREATE TABLE"):
            parse_schema_sql("SELECT a FROM t;")


WORKLOAD_SQL = """
-- transaction Payment
-- name updateWarehouse freq 2
UPDATE warehouse SET w_ytd = w_ytd + ? WHERE w_id = ?;
-- name findCustomer rows 10
SELECT c_id, c_last FROM customer WHERE c_w_id = ? ORDER BY c_last;

-- transaction Audit
-- name fullScan rows customer=25
SELECT * FROM customer;
-- name purge
DELETE FROM customer WHERE c_id = ?;
"""


class TestWorkloadLoader:
    @pytest.fixture
    def schema(self):
        return parse_schema_sql(SCHEMA_SQL)

    def test_transactions_split_by_annotation(self, schema):
        workload = parse_workload_sql(WORKLOAD_SQL, schema)
        assert [t.name for t in workload] == ["Payment", "Audit"]

    def test_update_split_follows_convention(self, schema):
        workload = parse_workload_sql(WORKLOAD_SQL, schema)
        payment = workload.transaction("Payment")
        read = next(q for q in payment if q.name.endswith("updateWarehouse:read"))
        write = next(q for q in payment if q.name.endswith("updateWarehouse:write"))
        # Self-reference w_ytd = w_ytd + ? does not force a read.
        assert read.attributes == {"warehouse.w_id"}
        assert write.attributes == {"warehouse.w_ytd"}
        assert read.frequency == 2.0

    def test_rows_annotations(self, schema):
        workload = parse_workload_sql(WORKLOAD_SQL, schema)
        find = next(
            q for q in workload.queries if q.name.endswith("findCustomer")
        )
        assert find.rows_for("customer") == 10.0
        scan = next(q for q in workload.queries if q.name.endswith("fullScan"))
        assert scan.rows_for("customer") == 25.0

    def test_star_expands_all_columns(self, schema):
        workload = parse_workload_sql(WORKLOAD_SQL, schema)
        scan = next(q for q in workload.queries if q.name.endswith("fullScan"))
        assert len(scan.attributes) == 5

    def test_delete_reads_keys_writes_row(self, schema):
        workload = parse_workload_sql(WORKLOAD_SQL, schema)
        read = next(q for q in workload.queries if q.name.endswith("purge:read"))
        write = next(q for q in workload.queries if q.name.endswith("purge:write"))
        assert read.attributes == {"customer.c_id"}
        assert len(write.attributes) == 5

    def test_rows_for_unused_table_rejected(self, schema):
        bad = "-- transaction T\n-- rows warehouse=5\nSELECT c_id FROM customer;"
        with pytest.raises(ParseError, match="not used"):
            parse_workload_sql(bad, schema)

    def test_empty_workload_rejected(self, schema):
        with pytest.raises(ParseError, match="no statements"):
            parse_workload_sql("-- transaction T", schema)

    def test_full_instance_solvable(self):
        from repro.sa.solver import solve_sa

        instance = load_instance_from_sql(SCHEMA_SQL, WORKLOAD_SQL, name="sql")
        result = solve_sa(instance, 2, seed=0)
        assert result.objective > 0
