"""The incremental evaluator against the dense single source of truth.

The laws pinned here (see ``costmodel/incremental.py``):

* incremental objective (4)/(6) and site loads == dense evaluator to
  1e-9 after any sequence of moves / toggles / reassignments, across
  all three write-accounting modes, lambda in {1.0, 0.5} and
  replication on/off,
* trials restore the state bitwise on rollback,
* full SA runs produce the same result with and without the
  incremental path for fixed seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.evaluator import SolutionEvaluator, check_solution_feasible
from repro.costmodel.incremental import IncrementalEvaluator
from repro.exceptions import InstanceError, SolverError
from repro.sa.annealer import SimulatedAnnealer
from repro.sa.options import SaOptions
from tests.conftest import random_feasible_solution, small_random_instance

ALL_MODES = tuple(WriteAccounting)
TOLERANCE = 1e-9


def _relative_gap(a: float, b: float) -> float:
    return abs(a - b) / max(1.0, abs(b))


def _assert_state_matches_dense(
    incremental: IncrementalEvaluator, evaluator: SolutionEvaluator
) -> None:
    x, y = incremental.x_matrix(), incremental.y_matrix()
    assert _relative_gap(incremental.objective4(), evaluator.objective4(x, y)) < TOLERANCE
    assert _relative_gap(incremental.objective6(), evaluator.objective6(x, y)) < TOLERANCE
    dense_loads = evaluator.site_loads(x, y)
    scale = max(1.0, float(dense_loads.max()))
    assert float(np.abs(incremental.site_loads() - dense_loads).max()) / scale < TOLERANCE


def _coefficients(seed, mode, lam, **overrides):
    instance = small_random_instance(seed, **overrides)
    return build_coefficients(
        instance,
        CostParameters(write_accounting=mode, load_balance_lambda=lam),
    )


class TestAgreesWithDense:
    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("lam", [1.0, 0.5])
    def test_reset_matches_dense(self, mode, lam):
        for seed in range(4):
            coefficients = _coefficients(seed, mode, lam)
            evaluator = SolutionEvaluator(coefficients)
            x, y = random_feasible_solution(coefficients, 3, seed)
            incremental = IncrementalEvaluator(coefficients, 3)
            incremental.reset(x, y)
            _assert_state_matches_dense(incremental, evaluator)

    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("lam", [1.0, 0.5])
    def test_mutation_sequences_match_dense(self, mode, lam):
        """Random walks of moves, toggles and full reassignments stay
        glued to the dense evaluator."""
        num_sites = 3
        for seed in range(4):
            coefficients = _coefficients(
                seed, mode, lam, num_transactions=6, num_tables=4
            )
            evaluator = SolutionEvaluator(coefficients)
            x, y = random_feasible_solution(coefficients, num_sites, seed)
            incremental = IncrementalEvaluator(coefficients, num_sites)
            incremental.reset(x, y)
            rng = np.random.default_rng(seed + 1000)
            for step in range(25):
                roll = rng.random()
                if roll < 0.4:
                    chosen = rng.choice(
                        coefficients.num_transactions, size=2, replace=False
                    )
                    incremental.move_transactions(
                        chosen, rng.integers(0, num_sites, 2)
                    )
                elif roll < 0.8:
                    incremental.delta_toggle_replicas(
                        rng.integers(0, coefficients.num_attributes, 4),
                        rng.integers(0, num_sites, 4),
                    )
                else:
                    x_new, y_new = random_feasible_solution(
                        coefficients, num_sites, seed * 131 + step
                    )
                    incremental.assign_x(x_new)
                    incremental.assign_y(y_new)
                _assert_state_matches_dense(incremental, evaluator)

    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_single_replica_layouts(self, mode):
        """Replication off: one replica per attribute (disjoint-style
        y) round-trips through toggles correctly."""
        num_sites = 3
        coefficients = _coefficients(2, mode, 0.5)
        evaluator = SolutionEvaluator(coefficients)
        rng = np.random.default_rng(7)
        num_attributes = coefficients.num_attributes
        x = np.zeros((coefficients.num_transactions, num_sites), dtype=bool)
        x[:, 0] = True
        y = np.zeros((num_attributes, num_sites), dtype=bool)
        y[np.arange(num_attributes), 0] = True
        incremental = IncrementalEvaluator(coefficients, num_sites)
        incremental.reset(x, y)
        _assert_state_matches_dense(incremental, evaluator)
        # Migrate each attribute's single replica to a random site.
        targets = rng.integers(0, num_sites, num_attributes)
        for a in range(num_attributes):
            if targets[a] != 0:
                incremental.set_replicas([a, a], [0, targets[a]], False)
                incremental.set_replicas([a], [targets[a]], True)
        _assert_state_matches_dense(incremental, evaluator)
        assert (incremental.y_matrix().sum(axis=1) == 1).all()

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=200),
        mode=st.sampled_from(ALL_MODES),
        lam=st.sampled_from([1.0, 0.5]),
    )
    def test_delta_apis_return_dense_differences(self, seed, mode, lam):
        num_sites = 3
        coefficients = _coefficients(seed % 5, mode, lam)
        evaluator = SolutionEvaluator(coefficients)
        x, y = random_feasible_solution(coefficients, num_sites, seed)
        incremental = IncrementalEvaluator(coefficients, num_sites)
        incremental.reset(x, y)
        rng = np.random.default_rng(seed)
        base = evaluator.objective6(x, y)

        chosen = rng.choice(coefficients.num_transactions, size=2, replace=False)
        delta = incremental.delta_move_transactions(
            chosen, rng.integers(0, num_sites, 2)
        )
        after_move = evaluator.objective6(incremental.x_matrix(), incremental.y_matrix())
        assert delta == pytest.approx(after_move - base, abs=1e-6)

        attrs = rng.integers(0, coefficients.num_attributes, 3)
        sites = rng.integers(0, num_sites, 3)
        delta = incremental.delta_toggle_replicas(attrs, sites)
        after_toggle = evaluator.objective6(
            incremental.x_matrix(), incremental.y_matrix()
        )
        assert delta == pytest.approx(after_toggle - after_move, abs=1e-6)


class TestTrialProtocol:
    def test_rollback_is_bitwise_exact(self):
        coefficients = _coefficients(3, WriteAccounting.RELEVANT_ATTRIBUTES, 0.5)
        incremental = IncrementalEvaluator(coefficients, 3)
        x, y = random_feasible_solution(coefficients, 3, 3)
        incremental.reset(x, y)
        saved = {
            name: getattr(incremental, name).copy()
            for name in incremental._SNAP_ARRAYS
        }
        before = incremental.objective6()
        incremental.begin_trial()
        incremental.delta_toggle_replicas([0, 1, 2], [0, 1, 2])
        incremental.move_transactions([0, 1], [2, 2])
        incremental.rollback()
        assert incremental.objective6() == before
        for name, value in saved.items():
            assert np.array_equal(getattr(incremental, name), value), name

    def test_commit_keeps_mutations(self):
        coefficients = _coefficients(4, WriteAccounting.ALL_ATTRIBUTES, 1.0)
        evaluator = SolutionEvaluator(coefficients)
        incremental = IncrementalEvaluator(coefficients, 3)
        x, y = random_feasible_solution(coefficients, 3, 4)
        incremental.reset(x, y)
        incremental.begin_trial()
        incremental.delta_toggle_replicas([0], [1])
        incremental.commit()
        _assert_state_matches_dense(incremental, evaluator)

    def test_trial_misuse_raises(self):
        coefficients = _coefficients(0, WriteAccounting.ALL_ATTRIBUTES, 1.0)
        incremental = IncrementalEvaluator(coefficients, 2)
        with pytest.raises(SolverError):
            incremental.begin_trial()  # before reset
        x, y = random_feasible_solution(coefficients, 2, 0)
        incremental.reset(x, y)
        with pytest.raises(SolverError):
            incremental.commit()
        with pytest.raises(SolverError):
            incremental.rollback()
        incremental.begin_trial()
        with pytest.raises(SolverError):
            incremental.begin_trial()

    def test_reset_rejects_unplaced_transactions(self):
        coefficients = _coefficients(0, WriteAccounting.ALL_ATTRIBUTES, 1.0)
        incremental = IncrementalEvaluator(coefficients, 2)
        x, y = random_feasible_solution(coefficients, 2, 0)
        x[0, :] = False
        with pytest.raises(InstanceError):
            incremental.reset(x, y)

    def test_reset_does_not_alias_caller_arrays(self):
        """Regression: mutating the evaluator must never write through
        to the arrays the caller passed to reset."""
        coefficients = _coefficients(1, WriteAccounting.ALL_ATTRIBUTES, 1.0)
        incremental = IncrementalEvaluator(coefficients, 2)
        x, y = random_feasible_solution(coefficients, 2, 1)
        y_before = y.copy()
        incremental.reset(x, y)
        incremental.delta_toggle_replicas(
            np.arange(coefficients.num_attributes), np.zeros(coefficients.num_attributes, dtype=int)
        )
        np.testing.assert_array_equal(y, y_before)


class TestAnnealerEquivalence:
    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("lam", [1.0, 0.5])
    @pytest.mark.parametrize("disjoint", [False, True])
    def test_sa_results_match_dense_path(self, mode, lam, disjoint):
        """Fixed seeds: the annealer returns the same best cost with
        the incremental evaluator and with the dense path."""
        for seed in range(3):
            instance = small_random_instance(seed)
            coefficients = build_coefficients(
                instance,
                CostParameters(write_accounting=mode, load_balance_lambda=lam),
            )
            costs = {}
            for incremental in (True, False):
                annealer = SimulatedAnnealer(
                    coefficients,
                    3,
                    SaOptions(
                        inner_loops=6,
                        max_outer_loops=6,
                        seed=seed,
                        disjoint=disjoint,
                        incremental=incremental,
                    ),
                )
                x, y, cost = annealer.run()
                assert check_solution_feasible(coefficients, x, y)
                costs[incremental] = cost
            assert costs[True] == pytest.approx(costs[False], rel=1e-9, abs=1e-6)
