"""The solution evaluator: objective identities and feasibility checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.evaluator import (
    SolutionEvaluator,
    check_solution_feasible,
    feasibility_violations,
)
from repro.exceptions import InstanceError
from tests.conftest import random_feasible_solution, small_random_instance


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    num_sites=st.integers(min_value=1, max_value=4),
    penalty=st.sampled_from([0.0, 2.0, 8.0]),
)
def test_objective4_equals_breakdown_sum(seed, num_sites, penalty):
    """Objective (4) == AR + AW + p*B for any feasible solution."""
    instance = small_random_instance(seed)
    coefficients = build_coefficients(
        instance, CostParameters(network_penalty=penalty)
    )
    x, y = random_feasible_solution(coefficients, num_sites, seed + 1)
    evaluator = SolutionEvaluator(coefficients)
    breakdown = evaluator.breakdown(x, y)
    assert breakdown.objective4 == pytest.approx(
        breakdown.read_access
        + breakdown.write_access
        + penalty * breakdown.transfer
    )
    assert evaluator.objective4(x, y) == pytest.approx(breakdown.objective4)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    num_sites=st.integers(min_value=2, max_value=4),
)
def test_objective6_blends_cost_and_max_load(seed, num_sites):
    instance = small_random_instance(seed)
    parameters = CostParameters(load_balance_lambda=0.7)
    coefficients = build_coefficients(instance, parameters)
    x, y = random_feasible_solution(coefficients, num_sites, seed)
    evaluator = SolutionEvaluator(coefficients)
    loads = evaluator.site_loads(x, y)
    expected = 0.7 * evaluator.objective4(x, y) + 0.3 * loads.max()
    assert evaluator.objective6(x, y) == pytest.approx(expected)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_site_loads_sum_to_local_access(seed):
    """Sum of per-site work == A (reads once at home site + writes per
    replica), matching equation (5)'s derivation from (3)."""
    instance = small_random_instance(seed)
    coefficients = build_coefficients(instance, CostParameters())
    x, y = random_feasible_solution(coefficients, 3, seed)
    evaluator = SolutionEvaluator(coefficients)
    breakdown = evaluator.breakdown(x, y)
    assert sum(breakdown.site_loads) == pytest.approx(breakdown.local_access)


def test_single_site_has_no_transfer(tiny_coefficients):
    evaluator = SolutionEvaluator(tiny_coefficients)
    x = np.ones((2, 1), dtype=bool)
    y = np.ones((5, 1), dtype=bool)
    breakdown = evaluator.breakdown(x, y)
    assert breakdown.transfer == 0.0
    assert breakdown.objective4 == pytest.approx(
        tiny_coefficients.single_site_cost()
    )


def test_transfer_counts_only_remote_replicas(tiny_coefficients):
    """Writer updates Wide.payload (width 100, 2 rows): a remote replica
    costs exactly 200 transfer bytes."""
    instance = tiny_coefficients.instance
    evaluator = SolutionEvaluator(tiny_coefficients)
    a = instance.attribute_index["Wide.payload"]
    x = np.zeros((2, 2), dtype=bool)
    x[:, 0] = True  # both transactions on site 0
    y = np.zeros((5, 2), dtype=bool)
    y[:, 0] = True
    base = evaluator.breakdown(x, y)
    assert base.transfer == 0.0
    y[a, 1] = True  # remote replica of the updated attribute
    replicated = evaluator.breakdown(x, y)
    assert replicated.transfer == pytest.approx(200.0)


class TestWriteAccountingModes:
    def _layout(self, coefficients):
        x = np.zeros((2, 2), dtype=bool)
        x[0, 0] = x[1, 1] = True
        y = np.ones((coefficients.num_attributes, 2), dtype=bool)
        return x, y

    def test_none_mode_has_zero_write_access(self, tiny_instance):
        coefficients = build_coefficients(
            tiny_instance,
            CostParameters(write_accounting=WriteAccounting.NO_ATTRIBUTES),
        )
        x, y = self._layout(coefficients)
        breakdown = SolutionEvaluator(coefficients).breakdown(x, y)
        assert breakdown.write_access == 0.0

    def test_relevant_mode_never_exceeds_all_mode(self, tiny_instance):
        all_coeff = build_coefficients(tiny_instance, CostParameters())
        rel_coeff = build_coefficients(
            tiny_instance,
            CostParameters(write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES),
        )
        x, y = self._layout(all_coeff)
        aw_all = SolutionEvaluator(all_coeff).breakdown(x, y).write_access
        aw_rel = SolutionEvaluator(rel_coeff).breakdown(x, y).write_access
        assert aw_rel <= aw_all + 1e-9

    def test_relevant_mode_counts_colocated_fraction(self, tiny_instance):
        """A fraction containing the updated attribute is written whole."""
        coefficients = build_coefficients(
            tiny_instance,
            CostParameters(write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES),
        )
        x = np.ones((2, 1), dtype=bool)
        y = np.ones((5, 1), dtype=bool)
        breakdown = SolutionEvaluator(coefficients).breakdown(x, y)
        # Writer.update writes Wide.payload, 2 rows; the whole Wide
        # fraction (width 304) is written: AW = 2 * 304.
        assert breakdown.write_access == pytest.approx(2 * 304.0)


class TestLatency:
    def test_zero_without_penalty(self, tiny_coefficients):
        evaluator = SolutionEvaluator(tiny_coefficients)
        x, y = random_feasible_solution(tiny_coefficients, 2, 0)
        assert evaluator.latency(x, y) == 0.0

    def test_counts_remote_writing_queries(self, tiny_instance):
        parameters = CostParameters(latency_penalty=10.0)
        coefficients = build_coefficients(tiny_instance, parameters)
        evaluator = SolutionEvaluator(coefficients)
        instance = coefficients.instance
        a = instance.attribute_index["Wide.payload"]
        x = np.zeros((2, 2), dtype=bool)
        x[:, 0] = True
        y = np.zeros((5, 2), dtype=bool)
        y[:, 0] = True
        assert evaluator.latency(x, y) == 0.0
        y[a, 1] = True  # now Writer.update writes remotely
        assert evaluator.latency(x, y) == pytest.approx(10.0)


class TestFeasibility:
    def test_detects_homeless_transaction(self, tiny_coefficients):
        x = np.zeros((2, 2), dtype=bool)
        x[0, 0] = True  # transaction 1 placed nowhere
        y = np.ones((5, 2), dtype=bool)
        violations = feasibility_violations(tiny_coefficients, x, y)
        assert any("on 0 sites" in v for v in violations)

    def test_detects_missing_attribute(self, tiny_coefficients):
        x = np.zeros((2, 2), dtype=bool)
        x[:, 0] = True
        y = np.ones((5, 2), dtype=bool)
        y[3, :] = False
        violations = feasibility_violations(tiny_coefficients, x, y)
        assert any("on no site" in v for v in violations)

    def test_detects_broken_colocation(self, tiny_coefficients):
        instance = tiny_coefficients.instance
        a = instance.attribute_index["Narrow.key"]
        x = np.zeros((2, 2), dtype=bool)
        x[0, 0] = x[1, 1] = True
        y = np.ones((5, 2), dtype=bool)
        y[a, 1] = False  # Writer reads Narrow.key on site 1
        violations = feasibility_violations(tiny_coefficients, x, y)
        assert any("co-location" in v for v in violations)

    def test_feasible_solution_passes(self, tiny_coefficients):
        x, y = random_feasible_solution(tiny_coefficients, 3, 42)
        assert check_solution_feasible(tiny_coefficients, x, y)

    def test_shape_validation(self, tiny_coefficients):
        evaluator = SolutionEvaluator(tiny_coefficients)
        with pytest.raises(InstanceError, match="shape"):
            evaluator.objective4(np.ones((3, 2)), np.ones((5, 2)))
        with pytest.raises(InstanceError, match="number of sites"):
            evaluator.objective4(np.ones((2, 2)), np.ones((5, 3)))


def _relevant_write_access_reference(coefficients, y):
    """The original (pre-vectorisation) triple loop of Section 2.1's
    exact write accounting, kept as the reference implementation."""
    indicators = coefficients.indicators
    instance = coefficients.instance
    total = 0.0
    for q_index in np.flatnonzero(indicators.delta > 0):
        updated = indicators.alpha[:, q_index] > 0
        for s_index in range(y.shape[1]):
            on_site = y[:, s_index] > 0
            hit_attrs = np.flatnonzero(updated & on_site)
            if hit_attrs.size == 0:
                continue
            hit_tables = {instance.attributes[a].table for a in hit_attrs}
            for table in hit_tables:
                members = np.asarray(instance.table_attributes[table])
                local = members[on_site[members]]
                total += float(coefficients.weights[local, q_index].sum())
    return total


def _latency_reference(coefficients, x, y, penalty):
    """The original per-write-query latency loop."""
    indicators = coefficients.indicators
    owner = np.asarray(coefficients.instance.query_transaction)
    home_sites = x.argmax(axis=1)
    frequencies = np.asarray(
        [query.frequency for query in coefficients.instance.queries]
    )
    total = 0.0
    replica_counts = y.sum(axis=1)
    for q_index in np.flatnonzero(indicators.delta > 0):
        home = home_sites[owner[q_index]]
        updated = indicators.alpha[:, q_index] > 0
        remote = replica_counts[updated] - y[updated, home]
        if remote.sum() > 0:
            total += frequencies[q_index]
    return penalty * total


class TestVectorisedKernels:
    """The vectorised relevant-write and latency kernels against their
    original reference loops."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        num_sites=st.integers(min_value=1, max_value=4),
    )
    def test_relevant_write_access_matches_reference(self, seed, num_sites):
        instance = small_random_instance(seed)
        coefficients = build_coefficients(
            instance,
            CostParameters(write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES),
        )
        x, y = random_feasible_solution(coefficients, num_sites, seed + 1)
        evaluator = SolutionEvaluator(coefficients)
        vectorised = evaluator._relevant_write_access(
            x.astype(float), y.astype(float)
        )
        assert vectorised == pytest.approx(
            _relevant_write_access_reference(coefficients, y), rel=1e-12
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        num_sites=st.integers(min_value=1, max_value=4),
    )
    def test_latency_matches_reference(self, seed, num_sites):
        instance = small_random_instance(seed)
        coefficients = build_coefficients(
            instance, CostParameters(latency_penalty=3.5)
        )
        x, y = random_feasible_solution(coefficients, num_sites, seed + 1)
        evaluator = SolutionEvaluator(coefficients)
        assert evaluator.latency(x, y) == pytest.approx(
            _latency_reference(coefficients, x, y, 3.5), rel=1e-12
        )

    def test_latency_rejects_unplaced_transaction(self, tiny_instance):
        """Regression: a transaction on zero sites used to be silently
        treated as homed on site 0."""
        coefficients = build_coefficients(
            tiny_instance, CostParameters(latency_penalty=10.0)
        )
        evaluator = SolutionEvaluator(coefficients)
        x = np.zeros((2, 2), dtype=bool)
        x[0, 0] = True  # the Writer transaction is placed nowhere
        y = np.ones((5, 2), dtype=bool)
        with pytest.raises(InstanceError, match="no site"):
            evaluator.latency(x, y)
