"""The OLTP testbed instances (TATP, SmallBank, Voter)."""

import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.instances.library import instance_catalog, named_instance
from repro.instances.testbed import (
    smallbank_instance,
    tatp_instance,
    voter_instance,
)
from repro.model.statistics import describe_instance
from repro.partition.assignment import single_site_partitioning
from repro.qp.solver import QpPartitioner
from repro.sa.options import SaOptions
from repro.sa.solver import SaPartitioner


class TestTatp:
    def test_structure(self):
        instance = tatp_instance()
        assert len(instance.schema) == 4
        assert len(instance.schema.table("Subscriber")) == 34
        assert instance.num_transactions == 7

    def test_read_dominated_mix(self):
        """TATP is ~80% reads by frequency."""
        instance = tatp_instance()
        total = sum(q.frequency for q in instance.queries)
        writes = sum(q.frequency for q in instance.queries if q.is_write)
        assert writes / total < 0.3

    def test_get_subscriber_reads_whole_row(self):
        instance = tatp_instance()
        transaction = instance.workload.transaction("GetSubscriberData")
        assert len(transaction.read_attributes) == 34

    def test_partitioning_separates_flag_groups(self):
        """The wide Subscriber row with narrow access paths should
        benefit from vertical partitioning."""
        instance = tatp_instance()
        coefficients = build_coefficients(instance, CostParameters())
        baseline = single_site_partitioning(coefficients).objective
        result = QpPartitioner(coefficients, 2).solve(
            time_limit=30, backend="scipy"
        )
        assert result.objective <= baseline


class TestSmallBank:
    def test_structure(self):
        instance = smallbank_instance()
        assert instance.num_attributes == 6
        assert instance.num_transactions == 6

    def test_update_heavy(self):
        stats = describe_instance(smallbank_instance())
        assert stats.num_write_queries >= 5

    def test_solvable(self):
        instance = smallbank_instance()
        result = SaPartitioner(
            instance, 2, options=SaOptions(inner_loops=5, max_outer_loops=5, seed=0)
        ).solve()
        assert result.objective > 0


class TestVoter:
    def test_structure(self):
        instance = voter_instance()
        assert instance.num_attributes == 9
        assert instance.num_transactions == 3

    def test_vote_dominates_mix(self):
        instance = voter_instance()
        vote = instance.workload.transaction("Vote")
        leaderboard = instance.workload.transaction("Leaderboard")
        assert vote.queries[0].frequency > leaderboard.queries[0].frequency

    def test_insert_writes_whole_row(self):
        instance = voter_instance()
        insert = next(
            q for q in instance.queries if q.name == "Vote.insert"
        )
        assert len(insert.attributes) == 5


class TestCatalogIntegration:
    def test_catalog_lists_testbed(self):
        catalog = instance_catalog()
        for name in ("tatp", "smallbank", "voter"):
            assert name in catalog

    @pytest.mark.parametrize("name", ["tatp", "smallbank", "voter"])
    def test_named_instance_resolves(self, name):
        instance = named_instance(name)
        assert instance.num_attributes > 0

    @pytest.mark.parametrize("name", ["tatp", "smallbank", "voter"])
    def test_all_testbed_instances_partition_feasibly(self, name):
        instance = named_instance(name)
        coefficients = build_coefficients(instance, CostParameters())
        result = SaPartitioner(
            coefficients, 3,
            options=SaOptions(inner_loops=5, max_outer_loops=8, seed=1),
        ).solve()
        from repro.costmodel.evaluator import check_solution_feasible

        assert check_solution_feasible(coefficients, result.x, result.y)
        # Never worse than single-site (the collapse guard).
        baseline = single_site_partitioning(coefficients).objective
        assert result.metadata["objective6"] <= baseline + 1e-6
