"""End-to-end integration tests crossing every module boundary.

Each test walks a realistic user journey: SQL text -> instance ->
solver -> layout -> simulator -> trace -> re-estimated instance, and
checks the pieces agree with each other.
"""

import json

import pytest

from repro import (
    CostParameters,
    QueryEvent,
    build_coefficients,
    dump_instance,
    load_instance,
    reestimate_instance,
    render_layout,
    single_site_partitioning,
    solve_qp,
    solve_sa,
)
from repro.costmodel.evaluator import SolutionEvaluator
from repro.reduction.cuts import group_instance
from repro.simulator import WorkloadSimulator
from repro.sqlio import load_instance_from_sql

SCHEMA_SQL = """
CREATE TABLE products (
    id INT, name VARCHAR(40), description VARCHAR(400),
    price DECIMAL(10,2), stock INT
);
CREATE TABLE carts (
    id INT, product_id INT, quantity INT, added TIMESTAMP
);
"""

WORKLOAD_SQL = """
-- transaction Browse
-- name list rows products=20 freq 60
SELECT id, name, price FROM products WHERE price < ?;
-- name detail freq 30
SELECT id, name, description, price, stock FROM products WHERE id = ?;

-- transaction AddToCart
-- name insert freq 10
INSERT INTO carts (id, product_id, quantity, added) VALUES (?, ?, ?, ?);
-- name reserve freq 10
UPDATE products SET stock = stock - ? WHERE id = ?;
"""


@pytest.fixture(scope="module")
def instance():
    return load_instance_from_sql(SCHEMA_SQL, WORKLOAD_SQL, name="webshop")


def test_sql_to_solver_to_simulator_round_trip(instance):
    """SQL in, byte-exact simulated partitioning out."""
    parameters = CostParameters()
    result = solve_qp(instance, 2, parameters=parameters, time_limit=20)
    report = WorkloadSimulator(result).run()
    assert report.objective() == pytest.approx(result.objective)
    # The layout can be rendered and mentions both transactions.
    text = render_layout(result)
    assert "Browse" in text and "AddToCart" in text


def test_serialisation_preserves_solver_results(instance, tmp_path):
    """Dump/load the instance; the optimum must be identical."""
    path = tmp_path / "webshop.json"
    dump_instance(instance, path)
    reloaded = load_instance(path)
    parameters = CostParameters(load_balance_lambda=1.0)
    original = solve_qp(instance, 2, parameters=parameters, gap=1e-9)
    rebuilt = solve_qp(reloaded, 2, parameters=parameters, gap=1e-9)
    assert original.objective == pytest.approx(rebuilt.objective)


def test_grouping_commutes_with_sql_loading(instance):
    grouped = group_instance(instance)
    parameters = CostParameters(load_balance_lambda=1.0)
    direct = solve_qp(instance, 2, parameters=parameters, gap=1e-9)
    via_groups = grouped.expand(
        solve_qp(grouped.grouped, 2, parameters=parameters, gap=1e-9),
        build_coefficients(instance, parameters),
    )
    assert via_groups.objective == pytest.approx(direct.objective, rel=1e-9)


def test_trace_reestimation_changes_costs(instance):
    """A trace with a different mix must change the modelled cost."""
    events = []
    for _ in range(100):
        events.append(QueryEvent("Browse.detail", {"products": 1}))
    for _ in range(2):
        events.append(QueryEvent("Browse.list", {"products": 5}))
    traced = reestimate_instance(instance, events)
    before = build_coefficients(instance, CostParameters())
    after = build_coefficients(traced, CostParameters())
    assert single_site_partitioning(before).objective != pytest.approx(
        single_site_partitioning(after).objective
    )
    # The re-estimated instance still solves and simulates exactly.
    result = solve_sa(traced, 2, seed=0)
    report = WorkloadSimulator(result).run()
    assert report.objective() == pytest.approx(result.objective)


def test_sa_and_qp_agree_on_blended_objective_ordering(instance):
    parameters = CostParameters()
    coefficients = build_coefficients(instance, parameters)
    evaluator = SolutionEvaluator(coefficients)
    qp = solve_qp(instance, 2, parameters=parameters, time_limit=20)
    sa = solve_sa(instance, 2, parameters=parameters, seed=3)
    assert evaluator.objective6(qp.x, qp.y) <= (
        evaluator.objective6(sa.x, sa.y) + 1e-6
    )


def test_layout_summary_loads_match_evaluator(instance):
    result = solve_qp(instance, 3, time_limit=20)
    evaluator = SolutionEvaluator(result.coefficients)
    loads = evaluator.site_loads(result.x, result.y)
    breakdown = result.breakdown()
    assert breakdown.max_load == pytest.approx(float(loads.max()))
    assert sum(breakdown.site_loads) == pytest.approx(
        breakdown.local_access
    )
