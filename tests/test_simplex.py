"""The from-scratch simplex solver: textbook LPs and a differential
property test against scipy/HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.model import MipModel
from repro.solver.scipy_backend import solve_lp_scipy
from repro.solver.simplex import solve_lp_simplex
from repro.solver.solution import SolutionStatus


def _solve_both(model):
    arrays = model.to_standard_arrays()
    return solve_lp_simplex(arrays), solve_lp_scipy(arrays)


class TestTextbookCases:
    def test_simple_maximisation(self):
        # max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 (classic Dantzig).
        model = MipModel()
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraint(x <= 4)
        model.add_constraint(2 * y <= 12)
        model.add_constraint(3 * x + 2 * y <= 18)
        model.minimize(-3 * x - 5 * y)
        result = solve_lp_simplex(model.to_standard_arrays())
        assert result.status is SolutionStatus.OPTIMAL
        assert result.objective == pytest.approx(-36.0)
        np.testing.assert_allclose(result.values, [2.0, 6.0], atol=1e-8)

    def test_equality_constraints_need_phase1(self):
        model = MipModel()
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraint(x + y == 10)
        model.add_constraint(x - y == 2)
        model.minimize(x + 2 * y)
        result = solve_lp_simplex(model.to_standard_arrays())
        assert result.status is SolutionStatus.OPTIMAL
        np.testing.assert_allclose(result.values, [6.0, 4.0], atol=1e-8)

    def test_infeasible(self):
        model = MipModel()
        x = model.add_variable("x", upper=1)
        model.add_constraint(x >= 3)
        model.minimize(x)
        result = solve_lp_simplex(model.to_standard_arrays())
        assert result.status is SolutionStatus.INFEASIBLE

    def test_unbounded(self):
        model = MipModel()
        x = model.add_variable("x")
        model.add_constraint(x >= 1)
        model.minimize(-x)
        result = solve_lp_simplex(model.to_standard_arrays())
        assert result.status is SolutionStatus.UNBOUNDED

    def test_nonzero_lower_bounds_shifted(self):
        model = MipModel()
        x = model.add_variable("x", lower=3, upper=10)
        model.minimize(x)
        result = solve_lp_simplex(model.to_standard_arrays())
        assert result.objective == pytest.approx(3.0)

    def test_negative_rhs_rows(self):
        model = MipModel()
        x = model.add_variable("x", upper=10)
        model.add_constraint(-x <= -4)  # i.e. x >= 4
        model.minimize(x)
        result = solve_lp_simplex(model.to_standard_arrays())
        assert result.objective == pytest.approx(4.0)

    def test_degenerate_lp_terminates(self):
        # Multiple redundant constraints through the optimum.
        model = MipModel()
        x = model.add_variable("x")
        y = model.add_variable("y")
        model.add_constraint(x + y <= 1)
        model.add_constraint(2 * x + 2 * y <= 2)
        model.add_constraint(x <= 1)
        model.minimize(-x - y)
        result = solve_lp_simplex(model.to_standard_arrays())
        assert result.status is SolutionStatus.OPTIMAL
        assert result.objective == pytest.approx(-1.0)

    def test_unconstrained_model(self):
        model = MipModel()
        x = model.add_variable("x", upper=2)
        model.minimize(-x)
        result = solve_lp_simplex(model.to_standard_arrays())
        assert result.objective == pytest.approx(-2.0)

    def test_bound_overrides(self):
        model = MipModel()
        x = model.add_variable("x", upper=10)
        model.minimize(-x)
        arrays = model.to_standard_arrays()
        result = solve_lp_simplex(arrays, upper=np.array([4.0]))
        assert result.objective == pytest.approx(-4.0)
        result = solve_lp_simplex(
            arrays, lower=np.array([6.0]), upper=np.array([4.0])
        )
        assert result.status is SolutionStatus.INFEASIBLE


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_matches_highs_on_random_lps(seed):
    """Differential test: same status, same optimal value as HiGHS."""
    rng = np.random.default_rng(seed)
    model = MipModel(f"r{seed}")
    n = int(rng.integers(2, 7))
    variables = [
        model.add_variable(
            f"v{i}",
            lower=float(rng.integers(0, 3)),
            upper=float(rng.integers(3, 12)),
        )
        for i in range(n)
    ]
    for _ in range(int(rng.integers(1, 7))):
        coefficients = rng.normal(size=n)
        expr = sum(c * v for c, v in zip(coefficients, variables))
        rhs = float(rng.normal() * 5)
        kind = int(rng.integers(0, 3))
        if kind == 0:
            model.add_constraint(expr <= rhs)
        elif kind == 1:
            model.add_constraint(expr >= rhs)
        else:
            model.add_constraint(expr == rhs)
    model.minimize(
        sum(float(rng.normal()) * v for v in variables)
    )
    arrays = model.to_standard_arrays()
    ours = solve_lp_simplex(arrays)
    reference = solve_lp_scipy(arrays)
    assert ours.status == reference.status
    if ours.status is SolutionStatus.OPTIMAL:
        assert ours.objective == pytest.approx(reference.objective, abs=1e-6)
        # Our solution must actually be feasible.
        from repro.solver.branch_and_bound import solution_violations

        assert solution_violations(arrays, ours.values) == 0.0
