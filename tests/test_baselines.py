"""Baseline partitioners: feasibility and relative quality."""

import numpy as np
import pytest

from repro.baselines.affinity import (
    affinity_matrix,
    affinity_partitioning,
    bond_energy_order,
)
from repro.baselines.greedy import greedy_binpack_partitioning
from repro.baselines.hillclimb import hill_climb_partitioning
from repro.baselines.round_robin import round_robin_partitioning
from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import check_solution_feasible
from repro.qp.solver import QpPartitioner
from tests.conftest import small_random_instance

ALL_BASELINES = [
    round_robin_partitioning,
    hill_climb_partitioning,
    affinity_partitioning,
    greedy_binpack_partitioning,
]


@pytest.mark.parametrize("baseline", ALL_BASELINES)
@pytest.mark.parametrize("num_sites", [1, 2, 3])
def test_baselines_always_feasible(baseline, num_sites, tiny_instance):
    result = baseline(tiny_instance, num_sites)
    assert check_solution_feasible(result.coefficients, result.x, result.y)
    assert result.objective > 0


@pytest.mark.parametrize("baseline", ALL_BASELINES)
def test_baselines_accept_prebuilt_coefficients(baseline, tiny_coefficients):
    result = baseline(tiny_coefficients, 2)
    assert result.coefficients is tiny_coefficients


def test_qp_never_worse_than_baselines_blended():
    """The exact solver's blended objective lower-bounds every baseline."""
    from repro.costmodel.evaluator import SolutionEvaluator

    for seed in (0, 1):
        instance = small_random_instance(seed)
        coefficients = build_coefficients(instance, CostParameters())
        evaluator = SolutionEvaluator(coefficients)
        qp = QpPartitioner(coefficients, 2).solve(backend="scipy", gap=1e-6)
        qp_blended = evaluator.objective6(qp.x, qp.y)
        for baseline in ALL_BASELINES:
            result = baseline(coefficients, 2)
            assert qp_blended <= evaluator.objective6(result.x, result.y) + 1e-6


class TestAffinityInternals:
    def test_affinity_matrix_symmetric_nonnegative(self, tiny_coefficients):
        matrix = affinity_matrix(tiny_coefficients)
        np.testing.assert_allclose(matrix, matrix.T)
        assert (matrix >= 0).all()

    def test_coaccessed_attributes_have_positive_affinity(self, tiny_coefficients):
        instance = tiny_coefficients.instance
        matrix = affinity_matrix(tiny_coefficients)
        a = instance.attribute_index["Narrow.key"]
        b = instance.attribute_index["Narrow.value"]
        blob = instance.attribute_index["Wide.blob"]
        assert matrix[a, b] > 0  # co-accessed by Reader.getNarrow
        assert matrix[a, blob] == 0  # never co-accessed

    def test_bond_energy_order_is_permutation(self, tiny_coefficients):
        matrix = affinity_matrix(tiny_coefficients)
        order = bond_energy_order(matrix)
        assert sorted(order) == list(range(matrix.shape[0]))

    def test_bond_energy_keeps_affine_attributes_adjacent(self):
        # Block-diagonal affinity: two clear clusters {0,1}, {2,3}.
        matrix = np.array(
            [
                [0.0, 10.0, 0.0, 0.0],
                [10.0, 0.0, 0.0, 0.0],
                [0.0, 0.0, 0.0, 10.0],
                [0.0, 0.0, 10.0, 0.0],
            ]
        )
        order = bond_energy_order(matrix)
        position = {attribute: i for i, attribute in enumerate(order)}
        assert abs(position[0] - position[1]) == 1
        assert abs(position[2] - position[3]) == 1

    def test_empty_matrix(self):
        assert bond_energy_order(np.zeros((0, 0))) == []


def test_hill_climb_deterministic_with_seed(tiny_instance):
    first = hill_climb_partitioning(tiny_instance, 2, seed=1)
    second = hill_climb_partitioning(tiny_instance, 2, seed=1)
    assert first.objective == second.objective


def test_round_robin_spreads_transactions():
    instance = small_random_instance(2, num_transactions=6)
    result = round_robin_partitioning(instance, 3)
    per_site = result.x.sum(axis=0)
    assert (per_site == 2).all()


def test_binpack_metadata_reports_fragments(tiny_instance):
    result = greedy_binpack_partitioning(tiny_instance, 2)
    assert result.metadata["num_fragments"] >= 1
