"""The SaPartitioner facade."""

import pytest

from repro.costmodel.config import CostParameters
from repro.exceptions import SolverError
from repro.sa.options import SaOptions
from repro.sa.solver import SaPartitioner, solve_sa
from tests.conftest import small_random_instance


def test_returns_feasible_result(tiny_instance):
    result = solve_sa(tiny_instance, 2, seed=0)
    assert result.solver == "sa"
    assert result.num_sites == 2
    assert result.objective > 0
    assert not result.proven_optimal


def test_seed_makes_runs_reproducible():
    instance = small_random_instance(11)
    options = SaOptions(inner_loops=6, max_outer_loops=6, seed=42)
    first = SaPartitioner(instance, 2, options=options).solve()
    second = SaPartitioner(instance, 2, options=options).solve()
    assert first.objective == second.objective
    assert (first.x == second.x).all()
    assert (first.y == second.y).all()


def test_seed_argument_overrides_options(tiny_instance):
    result = solve_sa(
        tiny_instance, 2,
        options=SaOptions(inner_loops=4, max_outer_loops=3),
        seed=123,
    )
    assert result.metadata["iterations"] > 0


def test_metadata_records_trace(tiny_instance):
    result = solve_sa(tiny_instance, 2, seed=0)
    for key in ("objective6", "iterations", "accepted", "outer_loops"):
        assert key in result.metadata


def test_invalid_sites_rejected(tiny_instance):
    with pytest.raises(SolverError, match="at least one site"):
        SaPartitioner(tiny_instance, 0)


def test_conflicting_parameters_rejected(tiny_instance):
    from repro.costmodel.coefficients import build_coefficients

    coefficients = build_coefficients(tiny_instance, CostParameters())
    with pytest.raises(SolverError, match="conflicting"):
        SaPartitioner(
            coefficients, 2, parameters=CostParameters(network_penalty=2.0)
        )


def test_objective_reported_is_objective4(tiny_instance):
    """The paper reports objective (4) even though (6) is optimised."""
    result = solve_sa(tiny_instance, 2, seed=3)
    from repro.costmodel.evaluator import SolutionEvaluator

    evaluator = SolutionEvaluator(result.coefficients)
    assert result.objective == pytest.approx(
        evaluator.objective4(result.x, result.y)
    )
    assert result.metadata["objective6"] == pytest.approx(
        evaluator.objective6(result.x, result.y)
    )


def test_sa_beats_or_matches_single_site_often():
    """On partitioning-friendly instances SA should find a reduction."""
    from repro.costmodel.coefficients import build_coefficients
    from repro.partition.assignment import single_site_partitioning

    wins = 0
    for seed in range(5):
        instance = small_random_instance(
            seed, num_tables=3, max_attributes_per_table=8,
            max_attribute_refs_per_query=3, update_percent=10.0,
        )
        coefficients = build_coefficients(instance, CostParameters())
        baseline = single_site_partitioning(coefficients).objective
        result = SaPartitioner(
            coefficients, 2,
            options=SaOptions(inner_loops=10, max_outer_loops=12, seed=seed),
        ).solve()
        if result.objective < baseline - 1e-9:
            wins += 1
    assert wins >= 3
