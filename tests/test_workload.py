"""Unit tests for queries, transactions and workloads."""

import pytest

from repro.exceptions import WorkloadError
from repro.model.schema import SchemaBuilder
from repro.model.workload import Query, QueryKind, Transaction, Workload, split_update


class TestQuery:
    def test_read_constructor(self):
        query = Query.read("q", ["T.a", "T.b"], rows=3.0, frequency=2.0)
        assert not query.is_write
        assert query.tables == {"T"}
        assert query.rows_for("T") == 3.0
        assert query.frequency == 2.0

    def test_write_constructor(self):
        query = Query.write("q", ["T.a"])
        assert query.is_write

    def test_rows_default_to_one(self):
        query = Query.read("q", ["T.a"])
        assert query.rows_for("T") == 1.0

    def test_rows_mapping(self):
        query = Query.read("q", ["T.a", "U.b"], rows={"T": 5.0})
        assert query.rows_for("T") == 5.0
        assert query.rows_for("U") == 1.0

    def test_tables_derived_from_attributes(self):
        query = Query.read("q", ["T.a", "U.b", "U.c"])
        assert query.tables == {"T", "U"}

    def test_extra_tables_extend_beta(self):
        query = Query(
            name="q",
            kind=QueryKind.READ,
            attributes=frozenset(["T.a"]),
            extra_tables=frozenset(["U"]),
        )
        assert query.tables == {"T", "U"}

    def test_rejects_unqualified_attribute(self):
        with pytest.raises(WorkloadError, match="qualified"):
            Query.read("q", ["a"])

    def test_rejects_empty_access(self):
        with pytest.raises(WorkloadError, match="accesses no attributes"):
            Query.read("q", [])

    def test_rejects_bad_frequency(self):
        with pytest.raises(WorkloadError, match="positive frequency"):
            Query.read("q", ["T.a"], frequency=0)

    def test_rejects_bad_rows(self):
        with pytest.raises(WorkloadError, match="positive"):
            Query.read("q", ["T.a"], rows={"T": 0.0})


class TestSplitUpdate:
    def test_produces_read_and_write(self):
        read, write = split_update(
            "upd", read_attributes=["T.key"], written_attributes=["T.val"]
        )
        assert not read.is_write and write.is_write
        assert read.attributes == {"T.key"}
        assert write.attributes == {"T.val"}
        assert read.name == "upd:read"
        assert write.name == "upd:write"

    def test_written_attributes_do_not_force_reads(self):
        """Table-4 fidelity: self-increments must not enter the read set."""
        read, _ = split_update(
            "upd", read_attributes=["T.key"], written_attributes=["T.counter"]
        )
        assert "T.counter" not in read.attributes

    def test_pure_self_update_is_write_only(self):
        queries = split_update("upd", read_attributes=[], written_attributes=["T.c"])
        assert len(queries) == 1
        assert queries[0].is_write

    def test_rejects_writing_nothing(self):
        with pytest.raises(WorkloadError, match="writes no attributes"):
            split_update("upd", read_attributes=["T.a"], written_attributes=[])

    def test_rows_and_frequency_propagate(self):
        read, write = split_update(
            "upd", ["T.key"], ["T.val"], rows=10.0, frequency=3.0
        )
        assert read.rows_for("T") == 10.0
        assert write.rows_for("T") == 10.0
        assert read.frequency == write.frequency == 3.0


class TestTransaction:
    def test_read_attributes_union_of_read_queries(self):
        transaction = Transaction(
            "t",
            (
                Query.read("r", ["T.a", "T.b"]),
                Query.write("w", ["T.c"]),
            ),
        )
        assert transaction.read_attributes == {"T.a", "T.b"}
        assert transaction.written_attributes == {"T.c"}
        assert transaction.tables == {"T"}

    def test_rejects_empty(self):
        with pytest.raises(WorkloadError, match="no queries"):
            Transaction("t", ())


class TestWorkload:
    def test_queries_in_canonical_order(self):
        workload = Workload(
            [
                Transaction("t1", (Query.read("a", ["T.x"]),)),
                Transaction("t2", (Query.read("b", ["T.x"]),)),
            ]
        )
        assert [q.name for q in workload.queries] == ["a", "b"]

    def test_rejects_duplicate_transaction_names(self):
        transaction = Transaction("t", (Query.read("a", ["T.x"]),))
        other = Transaction("t", (Query.read("b", ["T.x"]),))
        with pytest.raises(WorkloadError, match="duplicate transaction"):
            Workload([transaction, other])

    def test_rejects_shared_query_names(self):
        with pytest.raises(WorkloadError, match="must be unique"):
            Workload(
                [
                    Transaction("t1", (Query.read("q", ["T.x"]),)),
                    Transaction("t2", (Query.read("q", ["T.x"]),)),
                ]
            )

    def test_transaction_of(self):
        workload = Workload([Transaction("t1", (Query.read("q", ["T.x"]),))])
        assert workload.transaction_of("q").name == "t1"
        with pytest.raises(WorkloadError, match="no query"):
            workload.transaction_of("zz")

    def test_validate_against_schema(self):
        schema = SchemaBuilder().table("T", x=4).build()
        good = Workload([Transaction("t", (Query.read("q", ["T.x"]),))])
        good.validate_against(schema)  # no raise
        bad = Workload([Transaction("t", (Query.read("q", ["T.y"]),))])
        with pytest.raises(WorkloadError, match="unknown attribute"):
            bad.validate_against(schema)

    def test_validate_rejects_unknown_rows_table(self):
        schema = SchemaBuilder().table("T", x=4).build()
        query = Query("q", QueryKind.READ, frozenset(["T.x"]), rows={"U": 2.0})
        workload = Workload([Transaction("t", (query,))])
        with pytest.raises(WorkloadError, match="unknown\\s+table"):
            workload.validate_against(schema)

    def test_rejects_empty_workload(self):
        with pytest.raises(WorkloadError, match="at least one transaction"):
            Workload([])
