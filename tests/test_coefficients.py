"""The derived coefficients c1, c2, c3, c4 against brute-force sums."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.coefficients import build_coefficients, build_weights
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.costmodel.constants import build_indicators
from tests.conftest import small_random_instance


def brute_force_coefficients(instance, parameters):
    """Direct implementation of the paper's sums, element by element."""
    indicators = build_indicators(instance)
    weights = build_weights(instance, indicators)
    num_attributes = instance.num_attributes
    num_transactions = instance.num_transactions
    num_queries = instance.num_queries
    p = parameters.network_penalty
    c1 = np.zeros((num_attributes, num_transactions))
    c2 = np.zeros(num_attributes)
    c3 = np.zeros((num_attributes, num_transactions))
    c4 = np.zeros(num_attributes)
    for a in range(num_attributes):
        for q in range(num_queries):
            w = weights[a, q]
            alpha = indicators.alpha[a, q]
            beta = indicators.beta[a, q]
            delta = indicators.delta[q]
            for t in range(num_transactions):
                gamma = indicators.gamma[q, t]
                c1[a, t] += w * gamma * (beta * (1 - delta) - p * alpha * delta)
                c3[a, t] += w * gamma * beta * (1 - delta)
            c2[a] += w * delta * (beta + p * alpha)
            c4[a] += w * beta * delta
    return c1, c2, c3, c4


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    penalty=st.sampled_from([0.0, 1.0, 8.0]),
)
def test_vectorised_matches_brute_force(seed, penalty):
    instance = small_random_instance(seed)
    parameters = CostParameters(network_penalty=penalty)
    coefficients = build_coefficients(instance, parameters)
    c1, c2, c3, c4 = brute_force_coefficients(instance, parameters)
    np.testing.assert_allclose(coefficients.c1, c1, atol=1e-9)
    np.testing.assert_allclose(coefficients.c2, c2, atol=1e-9)
    np.testing.assert_allclose(coefficients.c3, c3, atol=1e-9)
    np.testing.assert_allclose(coefficients.c4, c4, atol=1e-9)


def test_weights_formula(tiny_instance):
    indicators = build_indicators(tiny_instance)
    weights = build_weights(tiny_instance, indicators)
    index = tiny_instance.attribute_index
    q = tiny_instance.query_index
    # W = w_a * f_q * n_{a,q}: Wide.payload width 100, 2 rows, freq 1.
    assert weights[index["Wide.payload"], q["Writer.update"]] == 200.0
    # Untouched table -> zero weight.
    assert weights[index["Narrow.key"], q["Writer.update"]] == 0.0


def test_c1_contains_negative_transfer_rebate(tiny_coefficients):
    """The -p*alpha*delta term makes c1 negative for updated attributes
    at the updating transaction (Section 2.3 needs all three
    linearisation inequalities because of this)."""
    instance = tiny_coefficients.instance
    a = instance.attribute_index["Wide.payload"]
    t = instance.transaction_index["Writer"]
    assert tiny_coefficients.c1[a, t] < 0


def test_c3_c4_nonnegative(tiny_coefficients):
    assert np.all(tiny_coefficients.c3 >= 0)
    assert np.all(tiny_coefficients.c4 >= 0)


def test_no_attributes_accounting_zeroes_write_terms(tiny_instance):
    parameters = CostParameters(write_accounting=WriteAccounting.NO_ATTRIBUTES)
    coefficients = build_coefficients(tiny_instance, parameters)
    assert np.all(coefficients.c4 == 0)
    # c2 keeps only the transfer part.
    expected = (
        parameters.network_penalty * coefficients.transfer_weight.sum(axis=1)
    )
    np.testing.assert_allclose(coefficients.c2, expected)


def test_single_site_cost_is_total_beta_weight(tiny_coefficients):
    indicators = tiny_coefficients.indicators
    expected = float((tiny_coefficients.weights * indicators.beta).sum())
    assert tiny_coefficients.single_site_cost() == pytest.approx(expected)


def test_indicators_reusable_across_parameter_sweeps(tiny_instance):
    indicators = build_indicators(tiny_instance)
    low = build_coefficients(tiny_instance, CostParameters(network_penalty=0.0),
                             indicators=indicators)
    high = build_coefficients(tiny_instance, CostParameters(network_penalty=8.0),
                              indicators=indicators)
    assert low.indicators is high.indicators
    # c3/c4 are penalty-independent; c1/c2 are not (for written attrs).
    np.testing.assert_allclose(low.c3, high.c3)
    np.testing.assert_allclose(low.c4, high.c4)
    assert not np.allclose(low.c2, high.c2)
