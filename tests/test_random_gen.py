"""The Section 5.3 random instance generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InstanceError
from repro.instances.random_gen import (
    InstanceParameters,
    RandomInstanceGenerator,
    generate_instance,
)


class TestParameterValidation:
    def test_defaults_match_table1_bold_values(self):
        parameters = InstanceParameters()
        assert parameters.max_queries_per_transaction == 3  # A
        assert parameters.update_percent == 10.0  # B
        assert parameters.max_attributes_per_table == 15  # C
        assert parameters.max_table_refs_per_query == 5  # D
        assert parameters.max_attribute_refs_per_query == 15  # E
        assert parameters.attribute_widths == (4.0, 8.0)  # F

    def test_rejects_bad_update_percent(self):
        with pytest.raises(InstanceError, match="update_percent"):
            InstanceParameters(update_percent=150.0)

    def test_rejects_empty_widths(self):
        with pytest.raises(InstanceError, match="attribute_widths"):
            InstanceParameters(attribute_widths=())

    def test_rejects_zero_bounds(self):
        with pytest.raises(InstanceError):
            InstanceParameters(max_queries_per_transaction=0)

    def test_with_override(self):
        parameters = InstanceParameters().with_(update_percent=50.0)
        assert parameters.update_percent == 50.0
        assert parameters.max_queries_per_transaction == 3


class TestGeneration:
    def test_deterministic_for_seed(self):
        parameters = InstanceParameters(num_transactions=5, num_tables=4)
        first = generate_instance(parameters, seed=3)
        second = generate_instance(parameters, seed=3)
        assert [a.qualified_name for a in first.attributes] == [
            a.qualified_name for a in second.attributes
        ]
        for qa, qb in zip(first.queries, second.queries):
            assert qa.attributes == qb.attributes
            assert qa.frequency == qb.frequency

    def test_different_seeds_differ(self):
        parameters = InstanceParameters(num_transactions=8, num_tables=8)
        first = generate_instance(parameters, seed=1)
        second = generate_instance(parameters, seed=2)
        assert [q.attributes for q in first.queries] != [
            q.attributes for q in second.queries
        ]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_bounds_respected(self, seed):
        parameters = InstanceParameters(
            num_transactions=6,
            num_tables=5,
            max_queries_per_transaction=4,
            update_percent=50.0,
            max_attributes_per_table=7,
            max_table_refs_per_query=3,
            max_attribute_refs_per_query=6,
            attribute_widths=(2.0, 16.0),
            max_frequency=9,
            max_rows=4,
        )
        instance = generate_instance(parameters, seed=seed)
        assert instance.num_transactions == 6
        assert len(instance.schema) == 5
        for table in instance.schema.tables:
            assert 1 <= len(table) <= 7
            for attribute in table:
                assert attribute.width in (2.0, 16.0)
        for transaction in instance.workload:
            assert 1 <= len(transaction) <= 4
            for query in transaction:
                assert 1 <= len(query.tables) <= 3
                # At least one attribute per referenced table, at most
                # max(E, #tables) references in total.
                assert len(query.attributes) >= len(query.tables)
                assert len(query.attributes) <= max(6, len(query.tables))
                assert 1 <= query.frequency <= 9
                for table in query.tables:
                    assert 1 <= query.rows_for(table) <= 4

    def test_zero_update_percent_all_reads(self):
        parameters = InstanceParameters(update_percent=0.0)
        instance = generate_instance(parameters, seed=5)
        assert all(not q.is_write for q in instance.queries)

    def test_hundred_update_percent_all_writes(self):
        parameters = InstanceParameters(update_percent=100.0)
        instance = generate_instance(parameters, seed=5)
        assert all(q.is_write for q in instance.queries)

    def test_generator_object_reusable(self):
        generator = RandomInstanceGenerator(
            InstanceParameters(num_transactions=3, num_tables=3), seed=0
        )
        first = generator.generate()
        second = generator.generate()  # advances the stream
        assert first.num_attributes >= 1 and second.num_attributes >= 1
