"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel.coefficients import CostCoefficients, build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.instances.random_gen import InstanceParameters, generate_instance
from repro.model.instance import ProblemInstance
from repro.model.schema import SchemaBuilder
from repro.model.workload import Query, Transaction, Workload


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "chaos: deterministic fault-injection suite for the socket "
        "transport (run on its own in CI via `pytest -m chaos`)",
    )


@pytest.fixture
def tiny_instance() -> ProblemInstance:
    """Two tables, two transactions — small enough to reason about by hand.

    Wide.blob is read by nobody (free placement); Narrow.key is read by
    both transactions (forces co-location wherever both run).
    """
    schema = (
        SchemaBuilder("tiny")
        .table("Narrow", key=4, value=8)
        .table("Wide", key=4, payload=100, blob=200)
        .build()
    )
    workload = Workload(
        [
            Transaction(
                "Reader",
                (
                    Query.read("Reader.getNarrow", ["Narrow.key", "Narrow.value"]),
                    Query.read("Reader.getWide", ["Wide.key", "Wide.payload"]),
                ),
            ),
            Transaction(
                "Writer",
                (
                    Query.read("Writer.find", ["Narrow.key"]),
                    Query.write("Writer.update", ["Wide.payload"], rows=2.0),
                ),
            ),
        ],
        name="tiny-load",
    )
    return ProblemInstance(schema, workload, name="tiny")


@pytest.fixture
def tiny_coefficients(tiny_instance) -> CostCoefficients:
    return build_coefficients(tiny_instance, CostParameters())


@pytest.fixture
def paper_parameters() -> CostParameters:
    return CostParameters()


def small_random_instance(seed: int, **overrides) -> ProblemInstance:
    """A small random instance for property tests (deterministic by seed)."""
    defaults = dict(
        name=f"prop-{seed}",
        num_transactions=4,
        num_tables=3,
        max_queries_per_transaction=3,
        update_percent=30.0,
        max_attributes_per_table=5,
        max_table_refs_per_query=2,
        max_attribute_refs_per_query=4,
        attribute_widths=(2.0, 8.0),
        max_frequency=5,
        max_rows=3,
    )
    defaults.update(overrides)
    return generate_instance(InstanceParameters(**defaults), seed=seed)


def random_feasible_solution(
    coefficients: CostCoefficients, num_sites: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """A random (x, y) satisfying all constraints of model (4)."""
    rng = np.random.default_rng(seed)
    num_transactions = coefficients.num_transactions
    num_attributes = coefficients.num_attributes
    x = np.zeros((num_transactions, num_sites), dtype=bool)
    x[np.arange(num_transactions), rng.integers(0, num_sites, num_transactions)] = True
    y = rng.random((num_attributes, num_sites)) < 0.4
    # Enforce coverage and read co-location.
    uncovered = ~y.any(axis=1)
    y[uncovered, rng.integers(0, num_sites, int(uncovered.sum()))] = True
    forced = coefficients.phi_bool @ x
    y |= forced.astype(bool)
    return x, y


def brute_force_optimum(
    coefficients: CostCoefficients, num_sites: int
) -> tuple[float, np.ndarray, np.ndarray]:
    """Exact optimum of objective (4) with lambda = 1 by enumeration.

    Enumerates all transaction placements; for fixed ``x`` the optimal
    ``y`` decomposes per (attribute, site): a replica is placed where
    forced, where its net coefficient is negative, and at the cheapest
    site if still uncovered. Only valid for pure cost minimisation
    (``load_balance_lambda == 1``).
    """
    assert coefficients.parameters.load_balance_lambda == 1.0
    num_transactions = coefficients.num_transactions
    best = (np.inf, None, None)
    evaluator = SolutionEvaluator(coefficients)
    for code in range(num_sites**num_transactions):
        x = np.zeros((num_transactions, num_sites), dtype=bool)
        remaining = code
        for t in range(num_transactions):
            x[t, remaining % num_sites] = True
            remaining //= num_sites
        k = coefficients.c1 @ x.astype(float) + coefficients.c2[:, None]
        forced = (coefficients.phi_bool.astype(float) @ x.astype(float)) > 0
        y = forced | (k < 0)
        uncovered = ~y.any(axis=1)
        if uncovered.any():
            cheapest = np.argmin(k[uncovered], axis=1)
            y[np.flatnonzero(uncovered), cheapest] = True
        cost = evaluator.objective4(x, y)
        if cost < best[0] - 1e-9:
            best = (cost, x, y)
    return best
