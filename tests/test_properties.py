"""Cross-cutting invariants of the whole system (property-based).

These encode the qualitative claims of the paper as testable laws:

* replication never hurts (the blended optimum),
* more sites never hurt (pure cost, exact solver),
* local placement (p=0) is never costlier than remote (p>0),
* the QP lower-bounds SA and all baselines,
* the paper's |S|=1 identity: all transfer terms cancel.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.partition.assignment import single_site_partitioning
from repro.qp.solver import QpPartitioner
from repro.sa.options import SaOptions
from repro.sa.solver import SaPartitioner
from tests.conftest import random_feasible_solution, small_random_instance

PURE_COST = CostParameters(load_balance_lambda=1.0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=300))
def test_replication_never_hurts_pure_cost(seed):
    """Objective (4) optimum with replication <= without (lambda = 1)."""
    instance = small_random_instance(seed)
    coefficients = build_coefficients(instance, PURE_COST)
    replicated = QpPartitioner(coefficients, 2).solve(backend="scipy", gap=1e-9)
    disjoint = QpPartitioner(coefficients, 2, allow_replication=False).solve(
        backend="scipy", gap=1e-9
    )
    assert replicated.objective <= disjoint.objective + 1e-6


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=300))
def test_more_sites_never_hurt_pure_cost(seed):
    """With lambda = 1, adding a site cannot worsen the optimum (the
    extra site may simply stay unused)."""
    instance = small_random_instance(seed, num_transactions=3)
    coefficients = build_coefficients(instance, PURE_COST)
    costs = [
        QpPartitioner(coefficients, sites).solve(backend="scipy", gap=1e-9).objective
        for sites in (1, 2, 3)
    ]
    assert costs[1] <= costs[0] + 1e-6
    assert costs[2] <= costs[1] + 1e-6


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=300))
def test_local_placement_never_costlier(seed):
    """p = 0 removes the transfer term, so the optimum can only drop."""
    instance = small_random_instance(seed)
    remote = QpPartitioner(
        build_coefficients(instance, PURE_COST), 2
    ).solve(backend="scipy", gap=1e-9)
    local = QpPartitioner(
        build_coefficients(instance, PURE_COST.with_local_placement()), 2
    ).solve(backend="scipy", gap=1e-9)
    assert local.objective <= remote.objective + 1e-6


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=300))
def test_qp_lower_bounds_sa(seed):
    """The exact solver is never beaten on the blended objective."""
    instance = small_random_instance(seed)
    coefficients = build_coefficients(instance, CostParameters())
    evaluator = SolutionEvaluator(coefficients)
    qp = QpPartitioner(coefficients, 2).solve(backend="scipy", gap=1e-9)
    sa = SaPartitioner(
        coefficients, 2, options=SaOptions(inner_loops=6, max_outer_loops=8, seed=seed)
    ).solve()
    assert evaluator.objective6(qp.x, qp.y) <= (
        evaluator.objective6(sa.x, sa.y) + 1e-6
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    penalty=st.sampled_from([0.0, 3.0, 8.0, 128.0]),
)
def test_single_site_cost_independent_of_penalty(seed, penalty):
    """At |S| = 1 every transfer term cancels: the cost must not depend
    on p (the paper relies on this in Table 6's S=1 row)."""
    instance = small_random_instance(seed)
    with_penalty = single_site_partitioning(
        build_coefficients(instance, CostParameters(network_penalty=penalty))
    )
    without = single_site_partitioning(
        build_coefficients(instance, CostParameters(network_penalty=0.0))
    )
    assert with_penalty.objective == pytest.approx(without.objective)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_objective4_monotone_in_penalty(seed):
    """For a FIXED solution, objective (4) is non-decreasing in p."""
    instance = small_random_instance(seed)
    low = build_coefficients(instance, CostParameters(network_penalty=1.0))
    high = build_coefficients(instance, CostParameters(network_penalty=8.0))
    x, y = random_feasible_solution(low, 3, seed)
    assert SolutionEvaluator(high).objective4(x, y) >= (
        SolutionEvaluator(low).objective4(x, y) - 1e-9
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_adding_replicas_never_reduces_write_cost(seed):
    """Extending replication can only add write/transfer cost terms for
    a fixed x (this is what drives the SA's y-neighbourhood trade-off:
    replicas only pay off via co-location or load balance)."""
    instance = small_random_instance(seed)
    coefficients = build_coefficients(instance, CostParameters())
    evaluator = SolutionEvaluator(coefficients)
    x, y = random_feasible_solution(coefficients, 3, seed)
    rng = np.random.default_rng(seed)
    from repro.sa.neighborhood import extend_replication

    extended = extend_replication(y, rng, 0.3)
    base = evaluator.breakdown(x, y)
    more = evaluator.breakdown(x, extended)
    assert more.write_access >= base.write_access - 1e-9
    assert more.transfer >= base.transfer - 1e-9
    # Read access can also only grow: a new replica at a reader's home
    # site widens the fraction its row-store reads touch.
    assert more.read_access >= base.read_access - 1e-9
    assert more.objective4 >= base.objective4 - 1e-9


def test_paper_shape_rnd_classes_separate():
    """rndA-class instances must show a much larger cost-reduction
    potential than rndB-class ones (Table 3's central finding)."""
    from repro.instances.library import named_instance

    def reduction(name):
        instance = named_instance(name)
        coefficients = build_coefficients(instance, CostParameters())
        baseline = single_site_partitioning(coefficients).objective
        result = SaPartitioner(
            coefficients, 3,
            options=SaOptions(inner_loops=10, max_outer_loops=15, seed=0),
        ).solve()
        return 1.0 - result.objective / baseline

    assert reduction("rndAt8x15") > reduction("rndBt8x15") + 0.05
