"""Benchmark harness plumbing (formatting, config, fast table targets)."""

import ast
import json
import re
from pathlib import Path

import pytest

from repro.bench.artifact_schema import (
    ARTIFACT_SCHEMAS,
    validate_artifact,
    validate_schema,
)
from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable, format_cell, render_table
from repro.bench.runner import TABLE_FUNCTIONS, run_table
from repro.exceptions import ArtifactError, ReproError
from repro.sa.options import SaOptions

FAST_PROFILE = BenchProfile(
    name="test",
    qp_time_limit=10.0,
    qp_gap=1e-3,
    sa_options=SaOptions(inner_loops=4, max_outer_loops=4, seed=0),
    include_large=False,
    table1_sizes=(20,),
)


class TestFormatting:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(3.0) == "3"
        assert format_cell(3.25) == "3.250"
        assert format_cell("x") == "x"

    def test_render_aligns_columns(self):
        table = BenchTable(title="T", columns=["a", "long_header"])
        table.add_row(a=1, long_header="v")
        table.add_row(a=22, long_header="w")
        text = render_table(table)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[2]
        assert len({line.index("v") for line in lines if "v" in line}) == 1

    def test_notes_rendered(self):
        table = BenchTable(title="T", columns=["a"], notes=["hello"])
        assert "note: hello" in render_table(table)

    def test_column_values(self):
        table = BenchTable(title="T", columns=["a"])
        table.add_row(a=1)
        table.add_row(a=2)
        assert table.column_values("a") == [1, 2]


class TestProfiles:
    def test_default_profile_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert get_profile().name == "quick"

    def test_env_var_selects_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert get_profile().name == "paper"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError, match="unknown bench profile"):
            get_profile("warp-speed")

    def test_sa_for_reduces_large_instances(self):
        profile = get_profile("paper")
        small = profile.sa_for(100)
        large = profile.sa_for(1000)
        assert large.max_outer_loops <= small.max_outer_loops

    def test_backend_env_var_overrides_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "queue")
        assert get_profile("quick").sa_options.backend == "queue"
        monkeypatch.delenv("REPRO_BENCH_BACKEND")
        assert get_profile("quick").sa_options.backend is None

    def test_backend_env_var_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "carrier-pigeon")
        with pytest.raises(ReproError, match="unknown execution backend"):
            get_profile("quick")


class TestTargets:
    def test_all_paper_tables_registered(self):
        for name in ("table1", "table2", "table3", "table4", "table5", "table6"):
            assert name in TABLE_FUNCTIONS

    def test_unknown_target_rejected(self):
        with pytest.raises(ReproError, match="unknown bench target"):
            run_table("table99")

    def test_table2_lists_all_named_instances(self):
        table = run_table("table2", FAST_PROFILE)
        from repro.instances.library import TABLE2_INSTANCES

        assert len(table.rows) == len(TABLE2_INSTANCES)
        assert "rndAt4x15" in table.column_values("name")

    def test_table4_produces_three_sites(self):
        table = run_table("table4", FAST_PROFILE)
        assert table.column_values("site") == [1, 2, 3]
        # All five transactions distributed.
        transactions = ", ".join(str(v) for v in table.column_values("transactions"))
        for name in ("NewOrder", "Payment", "Delivery"):
            assert name in transactions
        assert any("objective" in note for note in table.notes)


# One (target, artifact file, schema family) triple per bench emitter
# that persists a machine-readable artifact.  New emitters must appear
# here AND in repro.bench.artifact_schema, or the completeness test
# below fails.
ARTIFACT_EMITTERS = [
    ("drift", "BENCH_drift.json", "drift"),
    ("service", "BENCH_service.json", "service"),
    ("transport", "BENCH_transport.json", "transport"),
    ("compression", "BENCH_compression.json", "compression"),
    ("calibrate", "BENCH_calibration.json", "calibration"),
]


class TestArtifactSchemas:
    """Every persisted ``BENCH_*.json`` validates against its family schema."""

    @pytest.mark.parametrize(
        "target,filename,family", ARTIFACT_EMITTERS, ids=lambda v: str(v)
    )
    def test_emitter_output_validates(self, target, filename, family,
                                      tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ARTIFACT_DIR", str(tmp_path))
        run_table(target, FAST_PROFILE)
        path = tmp_path / filename
        assert path.exists(), f"{target} did not write {filename}"
        payload = json.loads(path.read_text())
        assert validate_artifact(payload) == family
        assert payload["profile"] == FAST_PROFILE.name

    def test_every_schema_family_has_an_emitter(self):
        assert {family for _, _, family in ARTIFACT_EMITTERS} == set(
            ARTIFACT_SCHEMAS
        )

    def test_missing_required_key_is_rejected(self):
        payload = {
            "bench": "drift", "profile": "test", "seed": 0,
            "generated_at": "now", "rows": [],
        }  # misses migration_cost
        with pytest.raises(ArtifactError, match="migration_cost"):
            validate_artifact(payload)

    def test_row_shape_is_enforced(self):
        payload = {
            "bench": "transport", "profile": "test", "seed": 0,
            "generated_at": "now",
            "storm": {"requeue_count": 0, "retried_restarts": 0,
                      "worker_failures": 0},
            "rows": [{"metric": "m", "ratio": "fast", "detail": "d"}],
        }
        with pytest.raises(ArtifactError, match=r"rows\[0\]\.ratio"):
            validate_artifact(payload)

    def test_enum_and_const_violations_are_reported(self):
        with pytest.raises(ArtifactError, match="not one of"):
            validate_schema("maybe", {"enum": ["stay", "migrate"]})
        with pytest.raises(ArtifactError, match="expected"):
            validate_schema("drift", {"const": "service"})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ArtifactError, match="expected integer"):
            validate_schema(True, {"type": "integer"})

    def test_unknown_family_is_rejected(self):
        with pytest.raises(ArtifactError, match="unknown artifact family"):
            validate_artifact({"bench": "mystery"})


# ----------------------------------------------------------------------
# The no-wall-clock convention, enforced mechanically
# ----------------------------------------------------------------------
_TIMEISH = re.compile(
    r"(^|_)(wall|elapsed|seconds?|duration|perf_counter|monotonic)(_|$)",
    re.IGNORECASE,
)


def _identifiers(node):
    """Every dotted / subscripted identifier string under ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            yield sub.value


def _absolute_time_assertions(source, filename):
    """Assertions comparing a time-ish quantity against a numeric literal.

    Comparing wall-clock against a hard-coded bound makes a test hang
    its verdict on machine speed; bench code must gate on ratios,
    iteration budgets, or computed (relative) budgets instead.  Literal
    ``0`` is allowed — non-negativity is not a wall-clock budget.
    """
    violations = []
    for node in ast.walk(ast.parse(source, filename=filename)):
        if not isinstance(node, ast.Assert):
            continue
        for compare in ast.walk(node.test):
            if not isinstance(compare, ast.Compare):
                continue
            sides = [compare.left, *compare.comparators]
            timeish = [
                side for side in sides
                if any(_TIMEISH.search(name) for name in _identifiers(side))
            ]
            literal = [
                side for side in sides
                if isinstance(side, ast.Constant)
                and isinstance(side.value, (int, float))
                and not isinstance(side.value, bool)
                and side.value != 0
            ]
            if timeish and literal:
                violations.append(f"{filename}:{node.lineno}")
    return violations


class TestNoWallClockConvention:
    def test_bench_sources_never_assert_absolute_time(self):
        root = Path(__file__).parent.parent
        sources = sorted(
            list((root / "src" / "repro" / "bench").glob("*.py"))
            + list((root / "benchmarks").glob("*.py"))
        )
        assert sources, "bench sources not found — repo layout changed?"
        violations = []
        for path in sources:
            violations += _absolute_time_assertions(
                path.read_text(), str(path.relative_to(root))
            )
        assert not violations, (
            "absolute wall-clock assertions found (gate on ratios or "
            f"iteration budgets instead): {violations}"
        )

    def test_the_audit_actually_detects_violations(self):
        flagged = _absolute_time_assertions(
            "assert wall_time < 2.5\n", "example.py"
        )
        assert flagged == ["example.py:1"]
        ok = _absolute_time_assertions(
            "assert portfolio_wall <= budget\nassert wall_time >= 0\n",
            "example.py",
        )
        assert ok == []
