"""Benchmark harness plumbing (formatting, config, fast table targets)."""

import pytest

from repro.bench.config import BenchProfile, get_profile
from repro.bench.formatting import BenchTable, format_cell, render_table
from repro.bench.runner import TABLE_FUNCTIONS, run_table
from repro.exceptions import ReproError
from repro.sa.options import SaOptions

FAST_PROFILE = BenchProfile(
    name="test",
    qp_time_limit=10.0,
    qp_gap=1e-3,
    sa_options=SaOptions(inner_loops=4, max_outer_loops=4, seed=0),
    include_large=False,
    table1_sizes=(20,),
)


class TestFormatting:
    def test_format_cell(self):
        assert format_cell(None) == "-"
        assert format_cell(3.0) == "3"
        assert format_cell(3.25) == "3.250"
        assert format_cell("x") == "x"

    def test_render_aligns_columns(self):
        table = BenchTable(title="T", columns=["a", "long_header"])
        table.add_row(a=1, long_header="v")
        table.add_row(a=22, long_header="w")
        text = render_table(table)
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[2]
        assert len({line.index("v") for line in lines if "v" in line}) == 1

    def test_notes_rendered(self):
        table = BenchTable(title="T", columns=["a"], notes=["hello"])
        assert "note: hello" in render_table(table)

    def test_column_values(self):
        table = BenchTable(title="T", columns=["a"])
        table.add_row(a=1)
        table.add_row(a=2)
        assert table.column_values("a") == [1, 2]


class TestProfiles:
    def test_default_profile_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert get_profile().name == "quick"

    def test_env_var_selects_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "paper")
        assert get_profile().name == "paper"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ReproError, match="unknown bench profile"):
            get_profile("warp-speed")

    def test_sa_for_reduces_large_instances(self):
        profile = get_profile("paper")
        small = profile.sa_for(100)
        large = profile.sa_for(1000)
        assert large.max_outer_loops <= small.max_outer_loops

    def test_backend_env_var_overrides_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "queue")
        assert get_profile("quick").sa_options.backend == "queue"
        monkeypatch.delenv("REPRO_BENCH_BACKEND")
        assert get_profile("quick").sa_options.backend is None

    def test_backend_env_var_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "carrier-pigeon")
        with pytest.raises(ReproError, match="unknown execution backend"):
            get_profile("quick")


class TestTargets:
    def test_all_paper_tables_registered(self):
        for name in ("table1", "table2", "table3", "table4", "table5", "table6"):
            assert name in TABLE_FUNCTIONS

    def test_unknown_target_rejected(self):
        with pytest.raises(ReproError, match="unknown bench target"):
            run_table("table99")

    def test_table2_lists_all_named_instances(self):
        table = run_table("table2", FAST_PROFILE)
        from repro.instances.library import TABLE2_INSTANCES

        assert len(table.rows) == len(TABLE2_INSTANCES)
        assert "rndAt4x15" in table.column_values("name")

    def test_table4_produces_three_sites(self):
        table = run_table("table4", FAST_PROFILE)
        assert table.column_values("site") == [1, 2, 3]
        # All five transactions distributed.
        transactions = ", ".join(str(v) for v in table.column_values("transactions"))
        for name in ("NewOrder", "Payment", "Delivery"):
            assert name in transactions
        assert any("objective" in note for note in table.notes)
