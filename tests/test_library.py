"""The named instance library (Table 2)."""

import pytest

from repro.exceptions import InstanceError
from repro.instances.library import (
    TABLE2_INSTANCES,
    instance_catalog,
    named_instance,
)
from repro.model.statistics import describe_instance


def test_catalog_contains_tpcc_and_table2_names():
    catalog = instance_catalog()
    assert "tpcc" in catalog
    for name in ("rndAt4x15", "rndBt16x15", "rndAt8x15u50", "rndBt16x15u50",
                 "rndAt64x100", "rndBt64x15"):
        assert name in catalog


def test_named_instance_tpcc():
    instance = named_instance("tpcc")
    assert instance.num_attributes == 92


def test_unknown_name_rejected():
    with pytest.raises(InstanceError, match="unknown instance"):
        named_instance("nope")


def test_rnd_classes_follow_table2_parameters():
    a_class = TABLE2_INSTANCES["rndAt8x15"]
    assert a_class.max_attributes_per_table == 30
    assert a_class.max_table_refs_per_query == 3
    assert a_class.max_attribute_refs_per_query == 8
    b_class = TABLE2_INSTANCES["rndBt8x15"]
    assert b_class.max_attributes_per_table == 5
    assert b_class.max_table_refs_per_query == 6
    assert b_class.max_attribute_refs_per_query == 28
    for parameters in TABLE2_INSTANCES.values():
        assert parameters.attribute_widths == (2.0, 4.0, 8.0, 16.0)
        assert parameters.max_queries_per_transaction == 3


def test_u50_instances_have_heavy_updates():
    assert TABLE2_INSTANCES["rndAt8x15u50"].update_percent == 50.0
    instance = named_instance("rndAt8x15u50")
    stats = describe_instance(instance)
    assert stats.update_fraction > 0.25


def test_named_instances_deterministic():
    first = named_instance("rndAt4x15")
    second = named_instance("rndAt4x15")
    assert [q.attributes for q in first.queries] == [
        q.attributes for q in second.queries
    ]


def test_rnd_a_has_more_attributes_than_rnd_b():
    """rndA: many attrs/table; rndB: few — the classes must separate."""
    a = named_instance("rndAt8x15")
    b = named_instance("rndBt8x15")
    assert a.num_attributes > b.num_attributes
