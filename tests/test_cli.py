"""The command-line interface."""

import pytest

from repro.cli import build_parser, main

SCHEMA_SQL = "CREATE TABLE t (id INT, name VARCHAR(16), blob VARCHAR(200));"
WORKLOAD_SQL = """
-- transaction Lookup
SELECT id, name FROM t WHERE id = ?;
-- transaction Save
UPDATE t SET blob = ? WHERE id = ?;
"""


def test_info_tpcc(capsys):
    assert main(["info", "--instance", "tpcc"]) == 0
    output = capsys.readouterr().out
    assert "|A|: 92" in output.replace(" ", "").replace("|A|:", "|A|: ")


def test_advise_sa(capsys):
    exit_code = main([
        "advise", "--instance", "rndBt4x15", "--sites", "2",
        "--solver", "sa", "--seed", "0",
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "objective (4)" in output
    assert "reduction" in output


def test_advise_qp_with_layout(capsys):
    exit_code = main([
        "advise", "--instance", "rndBt4x15", "--sites", "2",
        "--solver", "qp", "--time-limit", "10", "--layout",
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Site 1" in output


def test_advise_portfolio_backend_and_prune(capsys):
    exit_code = main([
        "advise", "--instance", "rndBt4x15", "--sites", "2",
        "--solver", "sa-portfolio", "--seed", "0", "--restarts", "2",
        "--backend", "queue", "--prune",
    ])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "best-of-2" in output
    assert "queue executor" in output


def test_backend_requires_sa_family_solver(capsys):
    exit_code = main([
        "advise", "--instance", "rndBt4x15", "--sites", "2",
        "--solver", "greedy", "--backend", "queue",
    ])
    assert exit_code == 1
    assert "--backend" in capsys.readouterr().err


def test_unknown_backend_is_error(capsys):
    exit_code = main([
        "advise", "--instance", "rndBt4x15", "--sites", "2",
        "--solver", "sa-portfolio", "--restarts", "2",
        "--backend", "carrier-pigeon",
    ])
    assert exit_code == 1
    assert "unknown execution backend" in capsys.readouterr().err


def test_advise_sql_files(tmp_path, capsys):
    schema = tmp_path / "schema.sql"
    workload = tmp_path / "workload.sql"
    schema.write_text(SCHEMA_SQL)
    workload.write_text(WORKLOAD_SQL)
    exit_code = main([
        "advise", "--schema", str(schema), "--workload", str(workload),
        "--sites", "2", "--solver", "qp", "--time-limit", "10",
    ])
    assert exit_code == 0
    assert "workload" in capsys.readouterr().out


def test_schema_without_workload_is_error(tmp_path, capsys):
    schema = tmp_path / "schema.sql"
    schema.write_text(SCHEMA_SQL)
    exit_code = main(["info", "--schema", str(schema)])
    assert exit_code == 1
    assert "together" in capsys.readouterr().err


def test_unknown_instance_is_error(capsys):
    assert main(["info", "--instance", "nope"]) == 1
    assert "unknown instance" in capsys.readouterr().err


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("info", "advise", "bench"):
        assert command in text


def test_bench_rejects_unknown_target():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["bench", "tableX"])
