"""Indicator-array construction (Section 2.1) and its invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel.constants import build_indicators
from tests.conftest import small_random_instance


class TestTinyIndicators:
    @pytest.fixture(autouse=True)
    def _build(self, tiny_instance):
        self.instance = tiny_instance
        self.arrays = build_indicators(tiny_instance)

    def test_shapes(self):
        assert self.arrays.alpha.shape == (5, 4)
        assert self.arrays.beta.shape == (5, 4)
        assert self.arrays.gamma.shape == (4, 2)
        assert self.arrays.delta.shape == (4,)
        assert self.arrays.phi.shape == (5, 2)

    def test_delta_marks_writes(self):
        # queries: getNarrow, getWide, find, update
        assert list(self.arrays.delta) == [0, 0, 0, 1]

    def test_alpha_only_accessed_attributes(self):
        index = self.instance.attribute_index
        q = self.instance.query_index
        assert self.arrays.alpha[index["Narrow.key"], q["Reader.getNarrow"]] == 1
        assert self.arrays.alpha[index["Wide.blob"], q["Reader.getWide"]] == 0

    def test_beta_covers_whole_tables(self):
        index = self.instance.attribute_index
        q = self.instance.query_index
        # getWide touches table Wide, so blob is in beta despite not alpha.
        assert self.arrays.beta[index["Wide.blob"], q["Reader.getWide"]] == 1
        assert self.arrays.beta[index["Narrow.key"], q["Reader.getWide"]] == 0

    def test_phi_only_reads(self):
        index = self.instance.attribute_index
        t = self.instance.transaction_index
        # Writer only WRITES Wide.payload: phi must be 0 there.
        assert self.arrays.phi[index["Wide.payload"], t["Writer"]] == 0
        assert self.arrays.phi[index["Narrow.key"], t["Writer"]] == 1

    def test_rows_follow_query_statistics(self):
        index = self.instance.attribute_index
        q = self.instance.query_index
        assert self.arrays.rows[index["Wide.payload"], q["Writer.update"]] == 2.0
        assert self.arrays.rows[index["Narrow.key"], q["Writer.find"]] == 1.0


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_indicator_invariants(seed):
    """Structural invariants that must hold for every instance."""
    instance = small_random_instance(seed)
    arrays = build_indicators(instance)
    # alpha implies beta (accessing an attribute means touching its table).
    assert np.all(arrays.alpha <= arrays.beta)
    # Every query belongs to exactly one transaction.
    assert np.all(arrays.gamma.sum(axis=1) == 1)
    # phi is exactly the read-projection of alpha through gamma.
    read_alpha = arrays.alpha * (1 - arrays.delta)[None, :]
    expected_phi = (read_alpha @ arrays.gamma) > 0
    assert np.array_equal(arrays.phi > 0, expected_phi)
    # Row counts are positive exactly where beta is set.
    assert np.all((arrays.rows > 0) == (arrays.beta > 0))
