"""The unified advisor API: requests, registry, parity, batching."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.api import (
    Advisor,
    SolveRequest,
    SolverRegistry,
    advise,
    advise_many,
    default_registry,
    register_solver,
)
from repro.baselines.affinity import affinity_partitioning
from repro.baselines.greedy import greedy_binpack_partitioning
from repro.baselines.hillclimb import hill_climb_partitioning
from repro.baselines.round_robin import round_robin_partitioning
from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters, WriteAccounting
from repro.exceptions import OptionsError, SolverError, UnknownStrategyError
from repro.partition.assignment import single_site_partitioning
from repro.qp.linearize import LinearizationCache, build_linearized_model
from repro.qp.solver import QpPartitioner, solve_qp
from repro.reduction.heavy import IterativeRefinement
from repro.sa.options import SaOptions
from repro.sa.solver import SaPartitioner, solve_sa
from tests.conftest import small_random_instance

#: Small-but-fast SA settings shared by the parity tests.
SA_TEST_OPTIONS = {"inner_loops": 5, "max_outer_loops": 8, "patience": 3}


def _assert_same_solution(a, b):
    np.testing.assert_array_equal(a.x, b.x)
    np.testing.assert_array_equal(a.y, b.y)
    assert a.objective == b.objective


# ----------------------------------------------------------------------
# SolveRequest
# ----------------------------------------------------------------------
class TestSolveRequest:
    def test_json_round_trip_is_exact(self, tiny_instance):
        request = SolveRequest(
            instance=tiny_instance,
            num_sites=3,
            parameters=CostParameters(
                network_penalty=2.5,
                load_balance_lambda=0.75,
                write_accounting=WriteAccounting.NO_ATTRIBUTES,
                latency_penalty=1.5,
            ),
            allow_replication=False,
            strategy="sa",
            options={"inner_loops": 7, "restarts": 3, "cooling_rate": 0.8},
            seed=42,
            time_limit=12.5,
        )
        restored = SolveRequest.from_json(request.to_json())
        assert restored.to_dict() == request.to_dict()
        assert restored.num_sites == 3
        assert restored.parameters == request.parameters
        assert restored.allow_replication is False
        assert dict(restored.options) == dict(request.options)
        assert restored.seed == 42
        assert restored.time_limit == 12.5
        assert restored.instance.name == tiny_instance.name
        assert restored.instance.num_attributes == tiny_instance.num_attributes

    def test_round_trip_of_chained_request(self, tiny_instance):
        request = SolveRequest(
            instance=tiny_instance,
            num_sites=2,
            strategy="sa-portfolio->qp",
            options={"sa-portfolio": {"restarts": 2}, "qp": {"gap": 1e-4}},
        )
        restored = SolveRequest.from_json(request.to_json())
        assert restored.to_dict() == request.to_dict()
        assert restored.stages == ("sa-portfolio", "qp")

    def test_defaults_survive_round_trip(self, tiny_instance):
        request = SolveRequest(tiny_instance, num_sites=2)
        restored = SolveRequest.from_json(request.to_json())
        assert restored.strategy == "auto"
        assert restored.parameters == CostParameters()
        assert restored.seed is None and restored.time_limit is None

    def test_validation(self, tiny_instance):
        with pytest.raises(OptionsError):
            SolveRequest(tiny_instance, num_sites=0)
        with pytest.raises(OptionsError):
            SolveRequest(tiny_instance, num_sites=2, strategy="  ")
        with pytest.raises(OptionsError):
            SolveRequest(tiny_instance, num_sites=2, strategy="sa->")
        with pytest.raises(OptionsError):
            SolveRequest(tiny_instance, num_sites=2, time_limit=-1.0)

    def test_request_is_frozen(self, tiny_instance):
        request = SolveRequest(tiny_instance, num_sites=2, options={"a": 1})
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.num_sites = 3
        with pytest.raises(TypeError):
            request.options["a"] = 2

    def test_with_options_merges(self, tiny_instance):
        request = SolveRequest(tiny_instance, 2, options={"a": 1})
        merged = request.with_options(b=2)
        assert dict(merged.options) == {"a": 1, "b": 2}
        assert dict(request.options) == {"a": 1}

    def test_unsupported_format_version(self, tiny_instance):
        payload = SolveRequest(tiny_instance, 2).to_dict()
        payload["format_version"] = 99
        with pytest.raises(OptionsError):
            SolveRequest.from_dict(payload)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = default_registry().names()
        for name in ("qp", "sa", "sa-portfolio", "greedy", "affinity",
                     "hillclimb", "round-robin", "single-site", "qp-heavy",
                     "auto"):
            assert name in names

    def test_unknown_strategy_lists_known(self, tiny_instance):
        with pytest.raises(UnknownStrategyError, match="registered:.*qp"):
            advise(SolveRequest(tiny_instance, 2, strategy="nope"))

    def test_duplicate_registration_rejected(self):
        registry = SolverRegistry()
        registry.register("mine", lambda request, context: None)
        with pytest.raises(SolverError, match="already registered"):
            registry.register("mine", lambda request, context: None)
        registry.register("mine", lambda request, context: None, replace=True)

    def test_non_callable_rejected(self):
        with pytest.raises(SolverError, match="callable"):
            SolverRegistry().register("mine", object())

    def test_unregister_unknown(self):
        with pytest.raises(UnknownStrategyError):
            SolverRegistry().unregister("ghost")

    def test_user_registered_strategy_served(self, tiny_instance):
        registry = default_registry().copy()

        @registry.register("always-round-robin")
        def always_round_robin(request, context):
            return round_robin_partitioning(
                context.coefficients, request.num_sites
            )

        report = advise(
            SolveRequest(tiny_instance, 2, strategy="always-round-robin"),
            registry=registry,
        )
        assert report.strategy == "always-round-robin"
        direct = round_robin_partitioning(
            build_coefficients(tiny_instance, CostParameters()), 2
        )
        _assert_same_solution(report.result, direct)
        # The experiment-local registry never leaked into the default.
        assert "always-round-robin" not in default_registry()

    def test_register_solver_into_default(self, tiny_instance):
        @register_solver("test-api-temporary")
        def temporary(request, context):
            return round_robin_partitioning(
                context.coefficients, request.num_sites
            )

        try:
            report = advise(
                SolveRequest(tiny_instance, 2, strategy="test-api-temporary")
            )
            assert report.result.solver == "round-robin"
        finally:
            default_registry().unregister("test-api-temporary")


# ----------------------------------------------------------------------
# advise() vs direct calls: bitwise parity at pinned seeds
# ----------------------------------------------------------------------
class TestParity:
    @pytest.fixture
    def coefficients(self, tiny_instance):
        return build_coefficients(tiny_instance, CostParameters())

    def test_qp(self, tiny_instance, coefficients):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="qp",
            options={"backend": "scipy"}, time_limit=20,
        ))
        direct = QpPartitioner(coefficients, 2).solve(
            time_limit=20, backend="scipy"
        )
        _assert_same_solution(report.result, direct)

    def test_qp_disjoint(self, tiny_instance, coefficients):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="qp", allow_replication=False,
            options={"backend": "scipy"}, time_limit=20,
        ))
        direct = QpPartitioner(
            coefficients, 2, allow_replication=False
        ).solve(time_limit=20, backend="scipy")
        _assert_same_solution(report.result, direct)

    def test_sa(self, tiny_instance, coefficients):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="sa",
            options=SA_TEST_OPTIONS, seed=3,
        ))
        direct = SaPartitioner(
            coefficients, 2, options=SaOptions(seed=3, **SA_TEST_OPTIONS)
        ).solve()
        _assert_same_solution(report.result, direct)

    def test_sa_portfolio(self, tiny_instance, coefficients):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="sa-portfolio",
            options={"restarts": 3, **SA_TEST_OPTIONS}, seed=9,
        ))
        direct = SaPartitioner(
            coefficients, 2,
            options=SaOptions(seed=9, restarts=3, **SA_TEST_OPTIONS),
        ).solve()
        _assert_same_solution(report.result, direct)
        assert report.metadata["best_restart"] == direct.metadata["best_restart"]

    def test_greedy(self, tiny_instance, coefficients):
        report = advise(SolveRequest(tiny_instance, 2, strategy="greedy"))
        _assert_same_solution(
            report.result, greedy_binpack_partitioning(coefficients, 2)
        )

    def test_affinity(self, tiny_instance, coefficients):
        report = advise(SolveRequest(tiny_instance, 2, strategy="affinity"))
        _assert_same_solution(
            report.result, affinity_partitioning(coefficients, 2)
        )

    def test_round_robin(self, tiny_instance, coefficients):
        report = advise(SolveRequest(tiny_instance, 2, strategy="round-robin"))
        _assert_same_solution(
            report.result, round_robin_partitioning(coefficients, 2)
        )

    def test_hillclimb(self, tiny_instance, coefficients):
        report = advise(
            SolveRequest(tiny_instance, 2, strategy="hillclimb", seed=5)
        )
        _assert_same_solution(
            report.result, hill_climb_partitioning(coefficients, 2, seed=5)
        )

    def test_single_site(self, tiny_instance, coefficients):
        report = advise(SolveRequest(tiny_instance, 1, strategy="single-site"))
        _assert_same_solution(
            report.result, single_site_partitioning(coefficients)
        )

    def test_qp_heavy(self, coefficients):
        instance = small_random_instance(6)
        report = advise(SolveRequest(
            instance, 2, strategy="qp-heavy",
            options={"backend": "scipy"}, time_limit=20,
        ))
        direct = IterativeRefinement(instance, 2).solve(
            time_limit=20, backend="scipy"
        )
        _assert_same_solution(report.result, direct)

    def test_solve_qp_shim(self, tiny_instance, coefficients):
        shim = solve_qp(tiny_instance, 2, time_limit=20, backend="scipy")
        direct = QpPartitioner(coefficients, 2).solve(
            time_limit=20, backend="scipy"
        )
        _assert_same_solution(shim, direct)

    def test_solve_sa_shim(self, tiny_instance, coefficients):
        shim = solve_sa(
            tiny_instance, 2, options=SaOptions(**SA_TEST_OPTIONS), seed=7
        )
        direct = SaPartitioner(
            coefficients, 2, options=SaOptions(seed=7, **SA_TEST_OPTIONS)
        ).solve()
        _assert_same_solution(shim, direct)

    def test_unknown_strategy_option_rejected(self, tiny_instance):
        with pytest.raises(OptionsError, match="unknown options"):
            advise(SolveRequest(
                tiny_instance, 2, strategy="sa", options={"typo_knob": 1}
            ))

    def test_baselines_reject_disjoint(self, tiny_instance):
        for strategy in ("greedy", "affinity", "hillclimb", "round-robin"):
            with pytest.raises(OptionsError, match="disjoint"):
                advise(SolveRequest(
                    tiny_instance, 2, strategy=strategy,
                    allow_replication=False,
                ))


# ----------------------------------------------------------------------
# "auto": the Section VI model-size cutoff
# ----------------------------------------------------------------------
class TestAutoStrategy:
    def test_small_model_routes_to_qp(self, tiny_instance):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="auto",
            options={"backend": "scipy"}, time_limit=20,
        ))
        assert report.strategy == "qp"
        assert report.metadata["auto_pick"] == "qp"
        assert report.requested_strategy == "auto"

    def test_tight_cutoff_routes_to_sa(self, tiny_instance):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="auto", seed=1,
            options={"auto_cutoff": 0, **SA_TEST_OPTIONS},
        ))
        assert report.strategy == "sa"
        assert report.result.solver == "sa"

    def test_single_site_request(self, tiny_instance):
        report = advise(SolveRequest(tiny_instance, 1, strategy="auto"))
        assert report.strategy == "single-site"

    def test_relevant_accounting_routes_to_sa(self, tiny_instance):
        """The linearised QP cannot express RELEVANT_ATTRIBUTES; auto
        must route to SA however small the model is."""
        report = advise(SolveRequest(
            tiny_instance, 2, seed=1,
            parameters=CostParameters(
                write_accounting=WriteAccounting.RELEVANT_ATTRIBUTES
            ),
            strategy="auto", options=SA_TEST_OPTIONS,
        ))
        assert report.strategy == "sa"
        assert report.result.solver == "sa"

    def test_auto_rejects_unknown_options(self, tiny_instance):
        with pytest.raises(OptionsError, match="unknown options"):
            advise(SolveRequest(
                tiny_instance, 2, strategy="auto", options={"restartz": 9}
            ))

    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"allow_replication": False},
            {"symmetry_breaking": False},
        ],
    )
    def test_estimate_matches_built_model(self, seed, kwargs):
        instance = small_random_instance(seed)
        coefficients = build_coefficients(instance, CostParameters())
        partitioner = QpPartitioner(coefficients, 3, **kwargs)
        estimate = QpPartitioner.estimate_model_size(coefficients, 3, **kwargs)
        assert estimate == partitioner.model_size

    def test_estimate_matches_without_load_side(self):
        instance = small_random_instance(1)
        coefficients = build_coefficients(
            instance, CostParameters(load_balance_lambda=1.0)
        )
        partitioner = QpPartitioner(coefficients, 2)
        assert (
            QpPartitioner.estimate_model_size(coefficients, 2)
            == partitioner.model_size
        )


# ----------------------------------------------------------------------
# Chained strategies
# ----------------------------------------------------------------------
class TestChaining:
    def test_portfolio_warm_starts_qp(self, tiny_instance):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="sa-portfolio->qp",
            options={
                "sa-portfolio": {"restarts": 2, **SA_TEST_OPTIONS},
                "qp": {"backend": "scipy"},
            },
            seed=4, time_limit=20,
        ))
        assert report.strategy == "sa-portfolio->qp"
        assert len(report.stage_results) == 1
        assert report.stage_results[0].solver == "sa"
        assert report.result.solver == "qp"
        # The QP consumed the portfolio incumbent as its upper bound.
        assert report.metadata["warm_start_objective"] == pytest.approx(
            report.stage_results[0].objective
        )

    def test_chain_matches_direct_warm_start(self, tiny_instance):
        coefficients = build_coefficients(tiny_instance, CostParameters())
        incumbent = SaPartitioner(
            coefficients, 2,
            options=SaOptions(seed=4, restarts=2, **SA_TEST_OPTIONS),
        ).solve()
        direct = QpPartitioner(coefficients, 2).solve(
            time_limit=20, backend="scipy", warm_start=incumbent
        )
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="sa-portfolio->qp",
            options={
                "sa-portfolio": {"restarts": 2, **SA_TEST_OPTIONS},
                "qp": {"backend": "scipy"},
            },
            seed=4, time_limit=20,
        ))
        _assert_same_solution(report.result, direct)

    def test_chain_shares_one_time_budget(self, tiny_instance):
        """Each stage gets only what is left of request.time_limit."""
        seen: list[float | None] = []
        registry = default_registry().copy()

        def recording(request, context):
            seen.append(request.time_limit)
            return round_robin_partitioning(
                context.coefficients, request.num_sites
            )

        registry.register("record-budget", recording)
        advise(SolveRequest(
            tiny_instance, 2, strategy="record-budget->record-budget",
            time_limit=30.0,
        ), registry=registry)
        assert len(seen) == 2
        assert seen[0] is not None and seen[0] <= 30.0
        # The second stage's allowance shrank by the first stage's run.
        assert seen[1] is not None and seen[1] <= seen[0]

    def test_chained_options_must_be_stage_scoped(self, tiny_instance):
        with pytest.raises(OptionsError, match="per-stage"):
            advise(SolveRequest(
                tiny_instance, 2, strategy="sa-portfolio->qp",
                options={"restarts": 2},
            ))

    def test_exhausted_budget_keeps_incumbent(self, tiny_instance):
        """When the chain budget runs out, later stages are skipped and
        the incumbent already computed is returned, not an error."""
        import time as time_module

        registry = default_registry().copy()

        @registry.register("slow-round-robin")
        def slow(request, context):
            time_module.sleep(0.05)
            return round_robin_partitioning(
                context.coefficients, request.num_sites
            )

        report = advise(SolveRequest(
            tiny_instance, 2, strategy="slow-round-robin->qp",
            time_limit=0.01,
        ), registry=registry)
        assert report.result.solver == "round-robin"
        assert report.strategy == "slow-round-robin"
        assert report.metadata["chain_stages_skipped"] == ["qp"]

    def test_zero_time_limit_sa_still_returns_solution(self, tiny_instance):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="sa", seed=1, time_limit=0.0,
        ))
        coefficients = build_coefficients(tiny_instance, CostParameters())
        # The zero-budget run exits through the collapsed one-site
        # guard, which is the universal upper bar.
        assert report.objective <= single_site_partitioning(
            coefficients
        ).objective

    def test_prebuilt_coefficients_shims_skip_rebuild(self, tiny_instance):
        coefficients = build_coefficients(tiny_instance, CostParameters())
        qp = solve_qp(coefficients, 2, time_limit=20, backend="scipy")
        assert qp.coefficients is coefficients
        sa = solve_sa(
            coefficients, 2, options=SaOptions(**SA_TEST_OPTIONS), seed=2
        )
        assert sa.coefficients is coefficients

    def test_ignoring_stage_claims_no_warm_start(self, tiny_instance):
        """Only warm-start consumers (the QP family) may record one."""
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="qp->round-robin",
            options={"qp": {"backend": "scipy", "time_limit": 20}},
        ))
        assert report.result.solver == "round-robin"
        assert "warm_start_objective" not in report.metadata

    def test_stage_scoped_time_limit_overrides_request(self, tiny_instance):
        report = advise(SolveRequest(
            tiny_instance, 2, strategy="qp",
            options={"backend": "scipy", "time_limit": 20},
        ))
        direct = QpPartitioner(
            build_coefficients(tiny_instance, CostParameters()), 2
        ).solve(time_limit=20, backend="scipy")
        _assert_same_solution(report.result, direct)


# ----------------------------------------------------------------------
# Batched serving
# ----------------------------------------------------------------------
def _sweep_requests(instance):
    """A 10-point QP sweep alternating replicated/disjoint requests."""
    requests = []
    for penalty in (1.0, 2.0, 4.0, 8.0, 16.0):
        parameters = CostParameters(network_penalty=penalty)
        for allow_replication in (True, False):
            requests.append(SolveRequest(
                instance, 2, parameters=parameters,
                allow_replication=allow_replication, strategy="qp",
                options={"backend": "scipy"}, time_limit=20,
            ))
    return requests


class TestAdviseMany:
    def test_sweep_reuses_both_caches(self, tiny_instance):
        advisor = Advisor()
        reports = advisor.advise_many(_sweep_requests(tiny_instance))
        assert len(reports) == 10
        stats = advisor.cache_stats()
        # Each penalty builds coefficients once and reuses them for the
        # disjoint twin.
        assert stats["coefficient_misses"] == 5
        assert stats["coefficient_hits"] == 5
        # One replicated and one disjoint skeleton are built, then
        # re-priced for every later penalty (the LRU keeps both).
        assert stats["linearization_misses"] == 2
        assert stats["linearization_hits"] == 8
        # Cached serving must match fresh, uncached serving bitwise.
        for request, report in zip(_sweep_requests(tiny_instance), reports):
            fresh = Advisor(linearization_capacity=0).advise(request)
            _assert_same_solution(report.result, fresh.result)

    def test_deterministic_per_master_seed_regardless_of_jobs(
        self, tiny_instance
    ):
        def batch():
            return [
                SolveRequest(
                    tiny_instance, 2, strategy="sa-portfolio",
                    options={"restarts": 3, **SA_TEST_OPTIONS},
                )
                for _ in range(3)
            ]

        serial = Advisor().advise_many(batch(), master_seed=11, jobs=1)
        pooled = Advisor().advise_many(batch(), master_seed=11, jobs=2)
        repeat = Advisor().advise_many(batch(), master_seed=11, jobs=1)
        for a, b in zip(serial, pooled):
            _assert_same_solution(a.result, b.result)
        for a, b in zip(serial, repeat):
            _assert_same_solution(a.result, b.result)
        # Distinct requests drew distinct derived seeds.
        seeds = [report.request.seed for report in serial]
        assert len(set(seeds)) == len(seeds)
        assert all(seed is not None for seed in seeds)

    def test_pinned_seed_wins_over_master_seed(self, tiny_instance):
        request = SolveRequest(
            tiny_instance, 2, strategy="sa", options=SA_TEST_OPTIONS, seed=123
        )
        (report,) = advise_many([request], master_seed=7)
        assert report.request.seed == 123

    def test_module_level_advise_many(self, tiny_instance):
        reports = advise_many(_sweep_requests(tiny_instance)[:2])
        assert [r.result.solver for r in reports] == ["qp", "qp"]


# ----------------------------------------------------------------------
# LinearizationCache LRU
# ----------------------------------------------------------------------
class TestLinearizationLru:
    def _build(self, cache, coefficients, allow_replication):
        return build_linearized_model(
            coefficients, 2, allow_replication=allow_replication, cache=cache
        )

    def test_alternating_regimes_stay_cached(self):
        instance = small_random_instance(2)
        coefficients = build_coefficients(instance, CostParameters())
        cache = LinearizationCache(capacity=4)
        for allow_replication in (True, False, True, False, True, False):
            self._build(cache, coefficients, allow_replication)
        assert cache.misses == 2  # one per regime
        assert cache.hits == 4
        assert len(cache) == 2

    def test_capacity_evicts_least_recent(self):
        instance = small_random_instance(2)
        coefficients = build_coefficients(instance, CostParameters())
        cache = LinearizationCache(capacity=1)
        self._build(cache, coefficients, True)
        self._build(cache, coefficients, False)  # evicts the replicated one
        self._build(cache, coefficients, True)  # must rebuild
        assert cache.hits == 0
        assert cache.misses == 3
        assert len(cache) == 1

    def test_capacity_zero_disables(self):
        instance = small_random_instance(2)
        coefficients = build_coefficients(instance, CostParameters())
        cache = LinearizationCache(capacity=0)
        self._build(cache, coefficients, True)
        self._build(cache, coefficients, True)
        assert cache.hits == 0 and len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(SolverError):
            LinearizationCache(capacity=-1)


# ----------------------------------------------------------------------
# Removed baseline keyword spellings
# ----------------------------------------------------------------------
BASELINES = [
    round_robin_partitioning,
    hill_climb_partitioning,
    affinity_partitioning,
    greedy_binpack_partitioning,
]


class TestBaselineSignatureNormalization:
    @pytest.mark.parametrize("baseline", BASELINES)
    def test_parameters_keyword_removed(self, baseline, tiny_instance):
        # The deprecation cycle is complete: the old spelling is a
        # TypeError carrying the migration message, not a warning.
        with pytest.raises(TypeError, match="rename it to params="):
            baseline(
                tiny_instance, 2,
                parameters=CostParameters(network_penalty=4.0), seed=0,
            )

    @pytest.mark.parametrize("baseline", BASELINES)
    def test_unknown_keyword_rejected(self, baseline, tiny_instance):
        with pytest.raises(TypeError, match="unexpected keyword"):
            baseline(tiny_instance, 2, not_a_knob=1)

    def test_both_spellings_rejected(self, tiny_instance):
        with pytest.raises(TypeError, match="no longer accepts"):
            round_robin_partitioning(
                tiny_instance, 2,
                params=CostParameters(), parameters=CostParameters(),
            )

    @pytest.mark.parametrize("baseline", BASELINES)
    def test_seed_accepted_positionally(self, baseline, tiny_instance):
        result = baseline(tiny_instance, 2, None, 3)
        assert result.objective > 0


class TestAdvisorInstanceLru:
    def test_instance_caches_bounded(self):
        advisor = Advisor(instance_cache_capacity=2)
        instances = [small_random_instance(seed) for seed in (0, 1, 2)]
        for instance in instances:
            advisor.advise(SolveRequest(instance, 2, strategy="round-robin"))
        assert len(advisor._coefficient_caches) == 2
        # Evicted counters keep the totals monotone.
        stats = advisor.cache_stats()
        assert stats["coefficient_misses"] == 3

    def test_capacity_validated(self):
        with pytest.raises(OptionsError):
            Advisor(instance_cache_capacity=0)


class TestCliRequestMapping:
    def _args(self, **overrides):
        import argparse

        defaults = dict(
            solver="sa", sites=2, penalty=8.0, load_balance=0.1,
            disjoint=False, time_limit=None, seed=None, restarts=None,
            jobs=None, backend=None, workers=None, prune=False,
            compress="off", compress_tolerance=None,
            current_layout=None, migration_cost=0.0,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def test_chain_budget_is_stage_scoped(self, tiny_instance):
        from repro.cli import _advise_request

        request = _advise_request(
            self._args(solver="sa-portfolio->qp", restarts=4),
            tiny_instance, CostParameters(),
        )
        # The SA stage stays unbudgeted (fixed-seed determinism); only
        # the MIP stage carries the implicit 60s cap.
        assert request.time_limit is None
        assert request.options["qp"] == {"time_limit": 60.0}
        assert request.options["sa-portfolio"] == {"restarts": 4}

    def test_qp_heavy_gets_implicit_budget(self, tiny_instance):
        from repro.cli import _advise_request

        request = _advise_request(
            self._args(solver="qp-heavy"), tiny_instance, CostParameters()
        )
        assert request.options["time_limit"] == 60.0

    def test_explicit_single_restart_reaches_hillclimb(self, tiny_instance):
        from repro.cli import _advise_request

        request = _advise_request(
            self._args(solver="hillclimb", restarts=1),
            tiny_instance, CostParameters(),
        )
        assert request.options["restarts"] == 1


class TestSweepStrategies:
    def test_sweep_portfolio_actually_runs_a_portfolio(self, tiny_instance):
        from repro.analysis.sweeps import SweepCaches, _solve

        caches = SweepCaches(tiny_instance)
        result = _solve(
            caches, 2, CostParameters(), "sa-portfolio", 10.0, 0,
            SaOptions(inner_loops=3, max_outer_loops=3, patience=1),
        )
        # The strategy's best-of-4 default applies; SaOptions' own
        # restarts=1 default must not pin the sweep to a single run.
        assert result.metadata["restarts"] == 4

    def test_sweep_accepts_registry_baselines(self, tiny_instance):
        from repro.analysis.sweeps import penalty_sweep

        series = penalty_sweep(
            tiny_instance, solver="round-robin", penalties=(2.0, 8.0)
        )
        assert len(series.points) == 2


class TestSolveReport:
    def test_report_carries_serving_metadata(self, tiny_instance):
        advisor = Advisor()
        request = SolveRequest(
            tiny_instance, 2, strategy="sa", options=SA_TEST_OPTIONS, seed=0
        )
        report = advisor.advise(request)
        assert report.request is request
        assert report.wall_time >= report.result.wall_time
        assert set(report.cache_stats) == {
            "coefficient_hits", "coefficient_misses",
            "coefficient_evictions",
            "linearization_hits", "linearization_misses",
            "linearization_evictions",
        }
        assert report.degraded_from is None
        assert advisor.requests_served == 1
        assert "SolveReport" in repr(report)
