"""Parameter sweeps (the analysis package)."""

import pytest

from repro.analysis.sweeps import (
    lambda_sweep,
    penalty_sweep,
    replication_price_sweep,
    sites_sweep,
)
from tests.conftest import small_random_instance


@pytest.fixture(scope="module")
def instance():
    return small_random_instance(
        3, num_transactions=5, num_tables=3, max_attributes_per_table=6
    )


class TestPenaltySweep:
    def test_objective_monotone_in_penalty(self, instance):
        series = penalty_sweep(
            instance, num_sites=2, penalties=(0.0, 4.0, 16.0), time_limit=15
        )
        objectives = series.objectives()
        assert objectives == sorted(objectives)

    def test_point_fields_populated(self, instance):
        series = penalty_sweep(
            instance, num_sites=2, penalties=(8.0,), time_limit=15
        )
        point = series.points[0]
        assert point.objective > 0
        assert point.replication_factor >= 1.0
        assert point.max_load > 0

    def test_sa_solver_supported(self, instance):
        series = penalty_sweep(
            instance, num_sites=2, penalties=(0.0, 8.0), solver="sa", seed=0
        )
        assert len(series.points) == 2
        assert series.solver == "sa"

    def test_as_rows(self, instance):
        series = penalty_sweep(instance, penalties=(8.0,), time_limit=15)
        rows = series.as_rows()
        assert rows[0]["p"] == 8.0
        assert "objective" in rows[0]


class TestSitesSweep:
    def test_starts_at_single_site(self, instance):
        series = sites_sweep(instance, max_sites=3, time_limit=15)
        assert series.points[0].parameter == 1.0
        assert len(series.points) == 3

    def test_pure_cost_monotone_in_sites(self, instance):
        from repro.costmodel.config import CostParameters

        series = sites_sweep(
            instance, max_sites=3,
            parameters=CostParameters(load_balance_lambda=1.0),
            time_limit=15,
        )
        objectives = series.objectives()
        assert objectives[1] <= objectives[0] + 1e-6
        assert objectives[2] <= objectives[1] + 1e-6


class TestLambdaSweep:
    def test_max_load_shrinks_as_cost_weight_drops(self, instance):
        series = lambda_sweep(
            instance, num_sites=2, lambdas=(1.0, 0.5, 0.1), time_limit=15
        )
        loads = [point.max_load for point in series.points]
        # Max load is non-increasing as balance gains weight.
        assert loads[-1] <= loads[0] + 1e-6

    def test_objective4_never_below_pure_cost_optimum(self, instance):
        series = lambda_sweep(
            instance, num_sites=2, lambdas=(1.0, 0.1), time_limit=15
        )
        pure = series.points[0].objective
        balanced = series.points[1].objective
        assert balanced >= pure - 1e-6


class TestSweepCaching:
    def test_cached_sweep_matches_pointwise_solves(self, instance):
        """The sweep-level caches must not change any sweep point: the
        series equals solving each point from scratch."""
        from repro.costmodel.coefficients import build_coefficients
        from repro.costmodel.config import CostParameters
        from repro.qp.solver import QpPartitioner

        penalties = (0.0, 4.0, 16.0)
        series = penalty_sweep(
            instance, num_sites=2, penalties=penalties, time_limit=15
        )
        for penalty, point in zip(penalties, series.points):
            coefficients = build_coefficients(
                instance, CostParameters(network_penalty=penalty)
            )
            direct = QpPartitioner(coefficients, 2).solve(
                time_limit=15, backend="scipy"
            )
            assert point.objective == pytest.approx(direct.objective, rel=1e-9)

    def test_sa_sweep_unchanged_by_coefficient_cache(self, instance):
        """SA trajectories are chaotic in their inputs, so this pins the
        cached coefficients feeding them bitwise: same seed, same
        objective as a from-scratch solve."""
        from repro.costmodel.coefficients import build_coefficients
        from repro.costmodel.config import CostParameters
        from repro.sa.options import SaOptions
        from repro.sa.solver import SaPartitioner

        series = penalty_sweep(
            instance, num_sites=2, penalties=(8.0,), solver="sa", seed=3
        )
        coefficients = build_coefficients(
            instance, CostParameters(network_penalty=8.0)
        )
        direct = SaPartitioner(
            coefficients, 2,
            options=SaOptions(inner_loops=10, max_outer_loops=20, seed=3),
        ).solve()
        assert series.points[0].objective == direct.objective


class TestReplicationPriceSweep:
    def test_ratio_rows(self, instance):
        rows = replication_price_sweep(
            instance, num_sites=2, penalties=(0.0, 8.0), time_limit=15
        )
        assert len(rows) == 2
        for row in rows:
            assert row["replicated"] <= row["disjoint"] * 1.15
