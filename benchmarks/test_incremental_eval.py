"""Microbenchmark: incremental vs dense evaluation in the SA hot loop.

Two claims are pinned (on ``rndAt64x100``, a Table-2/3 instance with
~1000 attributes — well above the 200-attribute bar):

* the annealer's inner loop runs >= 3x faster with the incremental
  evaluator than with the dense path it replaces,
* for fixed seeds the two paths return the same result, here and on
  smaller Table-3 instances (the incremental path changes the cost
  arithmetic, not the search).

Plus pytest-benchmark baselines for the delta-evaluation primitives.
"""

import gc
import os
import time

import numpy as np
import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.incremental import IncrementalEvaluator
from repro.instances.library import named_instance
from repro.sa.annealer import SimulatedAnnealer
from repro.sa.options import SaOptions
from repro.sa.state import random_transaction_placement
from repro.sa.subsolve import SubproblemSolver

#: Pure-cost parameters: the dense path then pays one (|A|,|T|,|S|)
#: einsum per iteration, the paper's reporting objective.
PURE_COST = CostParameters(load_balance_lambda=1.0)


@pytest.fixture(scope="module")
def large_coefficients():
    coefficients = build_coefficients(named_instance("rndAt64x100"), PURE_COST)
    assert coefficients.num_attributes >= 200
    return coefficients


def _timed_run(coefficients, incremental: bool):
    annealer = SimulatedAnnealer(
        coefficients,
        4,
        SaOptions(inner_loops=40, max_outer_loops=3, seed=0, incremental=incremental),
    )
    started = time.perf_counter()
    _, _, cost = annealer.run()
    elapsed = time.perf_counter() - started
    return elapsed / annealer.trace.iterations, cost


def _measure_speedup(coefficients):
    """Best-of-3 dense/incremental per-iteration ratio (one run each)."""
    dense_times, incremental_times = [], []
    dense_cost = incremental_cost = None
    for _ in range(3):
        per_iteration, incremental_cost = _timed_run(coefficients, True)
        incremental_times.append(per_iteration)
        per_iteration, dense_cost = _timed_run(coefficients, False)
        dense_times.append(per_iteration)
    speedup = min(dense_times) / min(incremental_times)
    return speedup, min(dense_times), min(incremental_times), dense_cost, incremental_cost


def test_incremental_inner_loop_speedup(large_coefficients):
    """>= 3x per-iteration speedup of the SA inner loop, same answer.

    The gate is a *ratio* of two interleaved measurements on the same
    box, so an absolutely slow runner passes as long as both paths slow
    down together; transient noise (a neighbour stealing the core
    mid-measurement) is absorbed by retrying the whole measurement a
    few times and keeping the best ratio seen.  Shared CI runners get a
    slightly relaxed threshold — they routinely timeslice below the
    resolution these sub-millisecond loops need.
    """
    # One discarded pass per path: BLAS/allocator warm-up dominates the
    # first measurement otherwise.
    _timed_run(large_coefficients, True)
    _timed_run(large_coefficients, False)
    # CI gets a relaxed threshold — shared runners routinely timeslice
    # below the resolution these sub-millisecond loops need.  Five
    # attempts everywhere: a 3.5x steady-state ratio has to stay
    # depressed through five independent measurements to go red.
    threshold = 2.0 if os.environ.get("CI") else 3.0
    attempts = 5
    best_speedup = 0.0
    for attempt in range(attempts):
        # Allocator/GC debris from earlier tests in the session slows
        # the (allocation-heavier) incremental path and skews the ratio.
        gc.collect()
        speedup, dense, incremental, dense_cost, incremental_cost = _measure_speedup(
            large_coefficients
        )
        assert incremental_cost == pytest.approx(dense_cost, rel=1e-9)
        best_speedup = max(best_speedup, speedup)
        print(
            f"\nSA inner loop on rndAt64x100 "
            f"(|A|={large_coefficients.num_attributes}, attempt {attempt + 1}): "
            f"dense {dense * 1e6:.0f}us/iter, "
            f"incremental {incremental * 1e6:.0f}us/iter, "
            f"speedup {speedup:.1f}x"
        )
        if best_speedup >= threshold:
            break
    assert best_speedup >= threshold


@pytest.mark.parametrize("name", ["rndAt8x15", "rndBt8x15", "rndAt16x100"])
def test_table3_instances_unchanged_for_fixed_seeds(name):
    """The incremental path leaves Table-3 SA results untouched."""
    coefficients = build_coefficients(named_instance(name), CostParameters())
    costs = {}
    for incremental in (True, False):
        annealer = SimulatedAnnealer(
            coefficients,
            3,
            SaOptions(
                inner_loops=10, max_outer_loops=10, seed=1, incremental=incremental
            ),
        )
        _, _, costs[incremental] = annealer.run()
    assert costs[True] == pytest.approx(costs[False], rel=1e-9)


def test_bench_delta_move_and_rollback(benchmark, large_coefficients):
    """Baseline for one probed-and-rejected transaction move."""
    num_sites = 4
    rng = np.random.default_rng(0)
    x = random_transaction_placement(
        large_coefficients.num_transactions, num_sites, rng
    )
    y = SubproblemSolver(large_coefficients, num_sites).optimize_y_greedy(x)
    evaluator = IncrementalEvaluator(large_coefficients, num_sites)
    evaluator.reset(x, y)
    moved = rng.choice(large_coefficients.num_transactions, size=10, replace=False)
    targets = rng.integers(0, num_sites, size=10)

    def probe():
        evaluator.begin_trial()
        delta = evaluator.delta_move_transactions(moved, targets)
        evaluator.rollback()
        return delta

    benchmark(probe)


def test_bench_delta_toggle_replicas(benchmark, large_coefficients):
    """Baseline for one probed-and-rejected replica toggle batch."""
    num_sites = 4
    rng = np.random.default_rng(1)
    x = random_transaction_placement(
        large_coefficients.num_transactions, num_sites, rng
    )
    y = SubproblemSolver(large_coefficients, num_sites).optimize_y_greedy(x)
    evaluator = IncrementalEvaluator(large_coefficients, num_sites)
    evaluator.reset(x, y)
    attributes = rng.integers(0, large_coefficients.num_attributes, size=100)
    sites = rng.integers(0, num_sites, size=100)

    def probe():
        evaluator.begin_trial()
        delta = evaluator.delta_toggle_replicas(attributes, sites)
        evaluator.rollback()
        return delta

    benchmark(probe)
