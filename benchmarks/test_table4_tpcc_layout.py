"""Table 4: the concrete three-site TPC-C layout.

Expected shape (paper): every transaction placed, every attribute on at
least one site, StockLevel's small read set co-located with it, and a
moderate amount of replication (the paper's layout replicates e.g.
D_NEXT_O_ID and S_QUANTITY across sites).
"""

from repro.bench.tables import table4

from benchmarks.conftest import run_and_print


def test_table4_tpcc_layout(benchmark, profile):
    table = run_and_print(benchmark, table4, profile)

    assert [row["site"] for row in table.rows] == [1, 2, 3]

    # All five transactions distributed over the sites.
    placed = ", ".join(str(row["transactions"]) for row in table.rows)
    for name in ("NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"):
        assert name in placed

    # Attribute counts: each site hosts something; union >= 92 slots
    # (with replication the sum exceeds the attribute count).
    counts = [row["#attributes"] for row in table.rows]
    assert all(count > 0 for count in counts)
    assert sum(counts) >= 92

    # Some replication happened (the paper's layout shares e.g.
    # District.D_NEXT_O_ID between sites).
    assert sum(row["replicated attrs"] for row in table.rows) > 0

    # The rendered full layout is attached as notes.
    assert any("Site 1" in note for note in table.notes)
