"""Shared helpers for the paper-table benchmarks.

Every benchmark regenerates one table of the paper (quick profile by
default; set ``REPRO_BENCH_PROFILE=paper`` for budgets closer to the
paper's 30-minute GLPK runs) and asserts the paper's qualitative
*shape* — who wins, roughly by how much, where the crossovers are.
"""

from __future__ import annotations

import pytest

from repro.bench.config import get_profile
from repro.bench.formatting import BenchTable, render_table


@pytest.fixture(scope="session")
def profile():
    return get_profile()


def run_and_print(benchmark, table_function, profile) -> BenchTable:
    """Run a table generator once under pytest-benchmark and print it."""
    table = benchmark.pedantic(
        table_function, args=(profile,), rounds=1, iterations=1
    )
    print()
    print(render_table(table))
    return table
