"""Table 1: influence of the random-instance parameters on the SA solver.

Expected shape (paper): the largest workload reductions come with few
queries per transaction, few updates, many attributes per table and a
moderate number of attribute references per query; table references and
the width set matter less.
"""

from repro.bench.tables import table1

from benchmarks.conftest import run_and_print


def _rows_for(table, parameter, klass):
    return [
        row
        for row in table.rows
        if row["parameter"].startswith(parameter) and row["class"] == klass
    ]


def test_table1_parameter_sweep(benchmark, profile):
    table = run_and_print(benchmark, table1, profile)
    klass = f"{profile.table1_sizes[0]}x{profile.table1_sizes[0]}"

    # 6 parameters x 3 values per class.
    assert len(table.rows) == 18 * len(profile.table1_sizes)

    # Partitioning should never *increase* cost dramatically: S=3 is
    # within a small tolerance of S=1 on every row (load-balance ties
    # may cost a little) and strictly better somewhere.
    reductions = [row["red% S=3"] for row in table.rows]
    assert max(reductions) > 15.0
    assert min(reductions) > -10.0

    # Shape: many attributes per table (C=35) reduce more than few (C=5).
    c_rows = _rows_for(table, "C", klass)
    assert c_rows[-1]["red% S=3"] >= c_rows[0]["red% S=3"] - 5.0

    # Shape: fewer updates reduce at least as much as many updates.
    b_rows = _rows_for(table, "B", klass)
    assert b_rows[0]["red% S=3"] >= b_rows[-1]["red% S=3"] - 10.0
