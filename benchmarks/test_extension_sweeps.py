"""Extension: sensitivity curves the paper discusses but never plots.

* cost vs. network penalty p (Section 5 justifies p in [3, 128]),
* cost vs. number of sites (the Table 5 plateau),
* actual cost vs. load-balance weight (the Section 2.2 trade-off).
"""

import pytest

from repro.analysis.charts import render_series, render_series_breakdown
from repro.analysis.sweeps import lambda_sweep, penalty_sweep, sites_sweep
from repro.instances.library import named_instance


@pytest.fixture(scope="module")
def instance():
    return named_instance("rndAt8x15")


def test_extension_penalty_sweep(benchmark, instance):
    series = benchmark.pedantic(
        penalty_sweep,
        args=(instance,),
        kwargs={"num_sites": 2, "penalties": (0.0, 2.0, 8.0, 32.0),
                "time_limit": 20.0},
        rounds=1, iterations=1,
    )
    print()
    print(render_series_breakdown(series))
    objectives = series.objectives()
    # Costlier network -> higher optimal cost, monotonically.
    assert objectives == sorted(objectives)
    # Replication shrinks (or holds) as transfer gets pricier.
    replicas = [point.replication_factor for point in series.points]
    assert replicas[-1] <= replicas[0] + 0.05


def test_extension_sites_sweep(benchmark, instance):
    series = benchmark.pedantic(
        sites_sweep,
        args=(instance,),
        kwargs={"max_sites": 4, "time_limit": 20.0, "solver": "sa"},
        rounds=1, iterations=1,
    )
    print()
    print(render_series(series))
    objectives = series.objectives()
    # Two sites beat one; the tail flattens (within noise of the SA).
    assert objectives[1] < objectives[0]
    assert min(objectives[1:]) >= 0


def test_extension_lambda_sweep(benchmark, instance):
    series = benchmark.pedantic(
        lambda_sweep,
        args=(instance,),
        kwargs={"num_sites": 2, "lambdas": (1.0, 0.9, 0.5, 0.1),
                "time_limit": 20.0},
        rounds=1, iterations=1,
    )
    print()
    print(render_series(series))
    # Pure cost (lambda=1) has the lowest objective (4); shifting weight
    # to balance can only raise it.
    pure = series.points[0]
    for point in series.points[1:]:
        assert point.objective >= pure.objective - 1e-6
    # And the max load at lambda=0.1 stays in the same ballpark or
    # below (a strict <= only holds at proven optimality; the quick
    # profile's time limit can leave an incumbent).
    assert series.points[-1].max_load <= series.points[0].max_load * 1.10
