"""Bench smoke: socket-transport overhead and retry-storm throughput.

Drives the ``transport`` target end to end (runner dispatch included)
and asserts the shape of its contract: ratio-only reporting, a fault
storm that actually exercised the retry machinery (requeues and worker
failures observed), and a machine-readable ``BENCH_transport.json``
artifact.  Result *identity* under faults is asserted inside the bench
itself — and, exhaustively, by ``tests/test_transport.py``.
"""

from __future__ import annotations

import json

from benchmarks.conftest import run_and_print
from repro.bench.runner import run_table
from repro.bench.transport import ARTIFACT_ENV_VAR, ARTIFACT_NAME


def run_table_target(profile):
    return run_table("transport", profile)


def test_bench_transport_table(benchmark, profile, tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_ENV_VAR, str(tmp_path))
    table = run_and_print(benchmark, run_table_target, profile)

    by_metric = {row["metric"]: row for row in table.rows}
    # Ratios only: every reported number is dimensionless and positive.
    for row in table.rows:
        assert row["ratio"] > 0.0

    # Framing costs something but not an order of magnitude.
    overhead = by_metric["envelope frame round-trip vs bare envelope"]
    assert 1.0 <= overhead["ratio"] < 10.0

    artifact = json.loads((tmp_path / ARTIFACT_NAME).read_text())
    assert artifact["bench"] == "transport"
    assert len(artifact["rows"]) == len(table.rows)
    # The storm must have exercised the fault machinery, not idled.
    assert artifact["storm"]["requeue_count"] >= 1
    assert artifact["storm"]["worker_failures"] >= 1
    assert artifact["storm"]["retried_restarts"] >= 1
