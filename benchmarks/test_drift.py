"""Bench smoke: online re-partitioning under workload drift.

Drives the ``drift`` target end to end (runner dispatch included) and
asserts the shape of its contract: the re-solve-vs-stay ratio is 1.0
at zero drift and strictly improves as the drift grows, the verdict
flips from stay to migrate somewhere along the sweep, and a
machine-readable ``BENCH_drift.json`` artifact lands.  The hard
guarantees — warm total <= stay-put, and bitwise identity of
layout-carrying zero-cost requests — are asserted inside the bench
itself (and exhaustively by ``tests/test_repartition.py``).
"""

from __future__ import annotations

import json

from benchmarks.conftest import run_and_print
from repro.bench.drift import ARTIFACT_ENV_VAR, ARTIFACT_NAME, DRIFTS
from repro.bench.runner import run_table


def run_table_target(profile):
    return run_table("drift", profile)


def test_bench_drift_table(benchmark, profile, tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_ENV_VAR, str(tmp_path))
    table = run_and_print(benchmark, run_table_target, profile)

    assert len(table.rows) == len(DRIFTS)
    by_drift = {row["drift"]: row for row in table.rows}

    # No drift: the incumbent is optimal, re-solving buys nothing.
    assert by_drift[0.0]["resolve_vs_stay"] == 1.0
    assert by_drift[0.0]["verdict"] == "stay"

    # Ratios are monotone non-increasing as the drift grows, and the
    # full flash crowd makes migration a clear win.
    ratios = [by_drift[d]["resolve_vs_stay"] for d in DRIFTS]
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < 0.9
    assert by_drift[DRIFTS[-1]]["verdict"] == "migrate"

    for row in table.rows:
        assert row["resolve_vs_stay"] > 0.0
        assert row["warm_vs_cold_iters"] > 0.0

    artifact = json.loads((tmp_path / ARTIFACT_NAME).read_text())
    assert artifact["bench"] == "drift"
    assert len(artifact["rows"]) == len(table.rows)
    assert [row["drift"] for row in artifact["rows"]] == list(DRIFTS)
