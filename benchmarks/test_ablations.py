"""Ablation benchmarks for the design choices the paper discusses.

Each probes one decision: write accounting (Section 2.1), the
reasonable-cuts reduction and 20/80 refinement (Section 4), the
Appendix-A latency term, the from-scratch MIP backend, and the value of
the QP/SA formulation over classic baselines.
"""

from repro.bench import ablations

from benchmarks.conftest import run_and_print


def test_ablation_write_accounting(benchmark, profile):
    table = run_and_print(benchmark, ablations.ablation_write_accounting, profile)
    for instance in {row["instance"] for row in table.rows}:
        rows = {
            row["accounting"]: row
            for row in table.rows
            if row["instance"] == instance
        }
        # RELEVANT is exact: never above ALL; NONE drops AW entirely.
        assert rows["relevant"]["write access AW"] <= rows["all"]["write access AW"]
        assert rows["none"]["write access AW"] == 0
        assert (
            rows["none"]["objective (4)"]
            <= rows["relevant"]["objective (4)"]
            <= rows["all"]["objective (4)"]
        )


def test_ablation_reduction(benchmark, profile):
    table = run_and_print(benchmark, ablations.ablation_reduction, profile)
    for row in table.rows:
        # Grouping is lossless and shrinks the model.
        assert row["cost grouped"] == row["cost full"]
        assert row["QP vars grouped"] < row["QP vars full"]
        assert row["groups"] < row["|A|"]


def test_ablation_heavy(benchmark, profile):
    table = run_and_print(benchmark, ablations.ablation_heavy, profile)
    for row in table.rows:
        # The heavy-first warm start lands within 2x of the full QP.
        assert row["heavy-first cost"] <= 2.0 * row["QP cost"]
        assert row["heavy txns"] >= 1


def test_ablation_latency(benchmark, profile):
    table = run_and_print(benchmark, ablations.ablation_latency, profile)
    # Increasing the latency penalty never increases the number of
    # remote-writing queries the optimum tolerates.
    writers = [row["remote-writing queries"] for row in table.rows[1:]]
    assert writers == sorted(writers, reverse=True)


def test_ablation_backend(benchmark, profile):
    table = run_and_print(benchmark, ablations.ablation_backend, profile)
    for row in table.rows:
        # Both backends find the same optimum (within the 0.1% gap).
        assert abs(row["scratch cost"] - row["scipy cost"]) <= (
            0.005 * max(row["scipy cost"], 1)
        )


def test_ablation_baselines(benchmark, profile):
    table = run_and_print(benchmark, ablations.ablation_baselines, profile)
    for row in table.rows:
        # The QP is the floor; SA close; baselines in between or worse.
        assert row["QP"] <= row["SA"] * 1.02
        assert row["QP"] <= row["single-site"] * 1.02
        assert row["SA"] <= 1.2 * min(
            row["round-robin"], row["affinity"], row["binpack"],
            row["hill-climb"], row["single-site"],
        )
