"""Table 5: disjoint vs non-disjoint (replicated) partitioning.

Expected shape (paper): allowing replication reduces cost (TPC-C ratio
~64%, rndA 71-81%, rndB 89-96%), and TPC-C gains almost nothing beyond
two sites.
"""

from repro.bench.tables import table5

from benchmarks.conftest import run_and_print


def test_table5_replication(benchmark, profile):
    table = run_and_print(benchmark, table5, profile)
    rows = {(row["instance"], row["|S|"]): row for row in table.rows}

    # TPC-C: replication buys >= 10% over disjoint at every S >= 2.
    for num_sites in (2, 3, 4):
        row = rows[("TPC-C v5", num_sites)]
        assert row["ratio %"] <= 90

    # TPC-C plateau: S=3,4 within 7% of S=2 (paper: identical).
    s2 = rows[("TPC-C v5", 2)]["with repl"]
    for num_sites in (3, 4):
        assert rows[("TPC-C v5", num_sites)]["with repl"] <= s2 * 1.07

    # rndA benefits more from replication than rndB.
    rnd_a = min(
        rows[(name, 2)]["ratio %"] for name in ("rndAt4x15", "rndAt8x15")
    )
    rnd_b = min(
        rows[(name, 2)]["ratio %"] for name in ("rndBt8x15", "rndBt16x15")
    )
    assert rnd_a <= rnd_b

    # Replication never hurts by more than the load-balance tie margin.
    for row in table.rows:
        if row["ratio %"] is not None:
            assert row["ratio %"] <= 110, row["instance"]
