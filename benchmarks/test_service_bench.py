"""Bench smoke: advisor-service coalescing and shedding throughput.

Drives the ``service`` target end to end (runner dispatch included) and
asserts the shape of its contract: ratio-only reporting, coalescing
that actually deduplicated the storm, shedding that actually degraded
under pressure, and a machine-readable ``BENCH_service.json``
artifact.  Result *identity* (service answers bitwise equal to the
sequential advise loop) is asserted inside the bench itself — and,
exhaustively, by ``tests/test_service.py``.  No wall-clock parallelism
is asserted: the CI container is single-core, the ratios come from
doing strictly less work.
"""

from __future__ import annotations

import json

from benchmarks.conftest import run_and_print
from repro.bench.runner import run_table
from repro.bench.service import ARTIFACT_ENV_VAR, ARTIFACT_NAME, STORM_SIZE


def run_table_target(profile):
    return run_table("service", profile)


def test_bench_service_table(benchmark, profile, tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_ENV_VAR, str(tmp_path))
    table = run_and_print(benchmark, run_table_target, profile)

    by_metric = {row["metric"]: row for row in table.rows}
    # Ratios only: every reported number is dimensionless and positive.
    for row in table.rows:
        assert row["ratio"] > 0.0

    # Coalescing solved the storm once; the ratio reflects doing 1/N of
    # the work (generous bound: just require a clear win).
    storm = by_metric["coalesced duplicate storm vs sequential loop"]
    assert storm["ratio"] < 0.9
    assert f"{STORM_SIZE - 1} coalesced/cached" in storm["detail"]

    artifact = json.loads((tmp_path / ARTIFACT_NAME).read_text())
    assert artifact["bench"] == "service"
    assert len(artifact["rows"]) == len(table.rows)
    # The storm coalesced to a single solve, and pressure actually shed.
    assert artifact["counters"]["storm"]["served"] == 1
    assert artifact["counters"]["storm"]["coalesced"] >= 1
    assert artifact["counters"]["shed"]["shed_hard"] >= 1
    assert artifact["counters"]["shed"]["rejected_queue_full"] == 0
