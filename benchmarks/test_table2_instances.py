"""Table 2: the named random instance definitions.

Checks the two instance classes separate as designed: rndA instances
(max 30 attributes/table) are much wider than rndB ones (max 5).
"""

from repro.bench.tables import table2

from benchmarks.conftest import run_and_print


def test_table2_instances(benchmark, profile):
    table = run_and_print(benchmark, table2, profile)
    by_name = {row["name"]: row for row in table.rows}

    # All Table-2 names present (incl. the 64-table Table-3 extras).
    for name in ("rndAt4x15", "rndAt64x100", "rndBt16x15u50", "rndBt64x15"):
        assert name in by_name

    # Class parameters match the paper's Table 2.
    assert by_name["rndAt8x15"]["C"] == 30 and by_name["rndAt8x15"]["E"] == 8
    assert by_name["rndBt8x15"]["C"] == 5 and by_name["rndBt8x15"]["E"] == 28

    # Measured |A| separates the classes at every size.
    for tables in (4, 8, 16, 32):
        a = by_name[f"rndAt{tables}x15"]["|A| measured"]
        b = by_name[f"rndBt{tables}x15"]["|A| measured"]
        assert a > b

    # |A| is within the paper's ballpark for a few known rows
    # (paper: rndAt8x15 -> 105, rndBt8x15 -> 27; ours is a different
    # RNG so only the magnitude must match).
    assert 60 <= by_name["rndAt8x15"]["|A| measured"] <= 200
    assert 8 <= by_name["rndBt8x15"]["|A| measured"] <= 40
