"""Bench smoke: one ``advise_many`` batch through the bench runner.

Drives the ``advisor_batch`` target end to end (runner dispatch included)
and asserts the outcomes that are stable on the single-core CI
container: cache-hit ratios of the shared advisor caches and
determinism of the batch per master seed regardless of ``jobs`` — never
wall-clock parallelism.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_and_print
from repro.bench.advisor_batch import build_batch, run_batch
from repro.bench.runner import run_table


def test_bench_advisor_batch_table(benchmark, profile):
    table = run_and_print(benchmark, run_table_target, profile)
    assert len(table.rows) == 10
    assert any("coefficient cache" in note for note in table.notes)


def run_table_target(profile):
    return run_table("advisor_batch", profile)


def test_advisor_batch_cache_hit_ratios(profile):
    reports, advisor = run_batch(profile)
    assert len(reports) == len(build_batch(profile)) == 10
    stats = advisor.cache_stats()
    # Replicated/disjoint twins share each penalty's coefficients, and
    # the two SA requests reuse penalties already built -> >= 50% hits.
    coefficient_total = stats["coefficient_hits"] + stats["coefficient_misses"]
    assert stats["coefficient_hits"] / coefficient_total >= 0.5
    # One replicated and one disjoint MIP skeleton are built; every
    # later QP point re-prices a cached skeleton (the LRU holds both).
    assert stats["linearization_misses"] == 2
    linearization_total = (
        stats["linearization_hits"] + stats["linearization_misses"]
    )
    assert stats["linearization_hits"] / linearization_total >= 0.75


def test_advisor_batch_deterministic_regardless_of_jobs(profile):
    serial_reports, _ = run_batch(profile, jobs=1)
    pooled_reports, _ = run_batch(profile, jobs=2)
    for serial, pooled in zip(serial_reports, pooled_reports):
        assert serial.objective == pooled.objective
        np.testing.assert_array_equal(serial.x, pooled.x)
        np.testing.assert_array_equal(serial.y, pooled.y)
