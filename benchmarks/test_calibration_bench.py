"""Bench smoke: the calibration sweep and its regression gate.

Drives the ``calibrate`` target end to end (runner dispatch included)
and gates the equal-CPU-budget portfolio-vs-single-anneal ratios
against the tolerance band shipped inside the artifact: every ratio is
a pure function of the master seed and the loop budget (no wall-clock
anywhere), so a ratio outside the band means the annealer, the
portfolio seeding, or the cost model changed behaviour — exactly what
this gate exists to catch.  The same check runs in the ``calibration``
CI job over the uploaded ``BENCH_calibration.json``.
"""

from __future__ import annotations

import json

from benchmarks.conftest import run_and_print
from repro.bench.calibrate import (
    ARTIFACT_ENV_VAR,
    ARTIFACT_NAME,
    INSTANCES,
    RESTART_COUNTS,
)
from repro.bench.runner import run_table
from repro.calibration import CalibrationTable


def run_table_target(profile):
    return run_table("calibrate", profile)


def test_bench_calibrate_table(benchmark, profile, tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_ENV_VAR, str(tmp_path))
    table = run_and_print(benchmark, run_table_target, profile)

    assert len(table.rows) == len(INSTANCES) * len(RESTART_COUNTS)

    artifact = json.loads((tmp_path / ARTIFACT_NAME).read_text())
    assert artifact["bench"] == "calibration"
    assert len(artifact["rows"]) == len(table.rows)

    # THE regression gate: every equal-budget ratio inside the band the
    # artifact itself declares.  Equal CPU is by construction — the
    # loop budgets in each row must multiply out to (at most) the
    # single-anneal budget.
    gate = artifact["gate"]
    for row in artifact["rows"]:
        assert gate["min_ratio"] <= row["ratio"] <= gate["max_ratio"], row
        assert (
            row["restarts"] * row["portfolio_outer_loops"]
            <= row["single_outer_loops"]
        ), row

    # The embedded calibration table round-trips and can actually drive
    # calibrated auto-routing for every class the sweep touched.
    calibration = CalibrationTable.from_dict(artifact["calibration"])
    assert len(calibration) > 0
    for klass in {row["instance_class"] for row in artifact["rows"]}:
        assert calibration.recommend(klass, num_sites=4) is not None
