"""Benchmark evidence for the multi-start portfolio PR.

Three claims are pinned on ``rndAt64x100`` (the Table-2/3 instance with
~1000 attributes the incremental-evaluator benchmarks already use):

* a best-of-8 portfolio with ``jobs=4`` reaches a cost at least as good
  as the single-run incumbent (guaranteed: restart 0 reuses the master
  seed) in comparable wall-clock — well under the 8x a serial rerun of
  every restart would cost;
* the vectorised balance-aware (``lambda = 0.5``) sub-solves are >= 3x
  faster than the reference loop path with bitwise-equal layouts;
* the sweep-level :class:`~repro.qp.linearize.LinearizationCache` cuts
  ``build_linearized_model`` time measurably across a 10-point penalty
  sweep.

Timing gates compare two measurements taken on the same box
(ratio-style, with a retry), so absolutely slow runners don't flake;
shared CI runners get relaxed thresholds.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.costmodel.coefficients import CoefficientCache, build_coefficients
from repro.costmodel.config import CostParameters
from repro.instances.library import named_instance
from repro.qp.linearize import LinearizationCache, build_linearized_model
from repro.sa.options import SaOptions
from repro.sa.portfolio import run_portfolio
from repro.sa.solver import SaPartitioner
from repro.sa.state import random_transaction_placement
from repro.sa.subsolve import SubproblemSolver

BALANCED = CostParameters(load_balance_lambda=0.5)

#: Long enough per restart that worker startup (fork + shipping the
#: coefficients once per worker) amortises; short enough to stay a test.
PORTFOLIO_OPTIONS = dict(inner_loops=40, max_outer_loops=12, patience=12)


@pytest.fixture(scope="module")
def large_coefficients():
    coefficients = build_coefficients(named_instance("rndAt64x100"), BALANCED)
    assert coefficients.num_attributes >= 200
    return coefficients


def test_portfolio_best_of_8_beats_single_run(large_coefficients):
    """Best-of-8 (jobs=4) <= single incumbent, in comparable wall-clock."""
    single_started = time.perf_counter()
    single = SaPartitioner(
        large_coefficients, 4, options=SaOptions(seed=7, **PORTFOLIO_OPTIONS)
    ).solve()
    single_wall = time.perf_counter() - single_started

    portfolio_started = time.perf_counter()
    portfolio = run_portfolio(
        large_coefficients, 4,
        SaOptions(seed=7, restarts=8, jobs=4, **PORTFOLIO_OPTIONS),
    )
    portfolio_wall = time.perf_counter() - portfolio_started

    print(
        f"\nrndAt64x100, |S|=4: single {single.metadata['objective6']:.0f} "
        f"in {single_wall:.2f}s; best-of-8 (jobs=4, {portfolio.executor}) "
        f"{portfolio.objective6:.0f} in {portfolio_wall:.2f}s "
        f"(winner: restart {portfolio.best_restart})"
    )
    # Guaranteed: restart 0 replays the master seed, so best-of-8 can
    # only improve on the single run.
    assert portfolio.objective6 <= single.metadata["objective6"] + 1e-9
    assert len(portfolio.outcomes) == 8
    if os.environ.get("CI"):
        return  # report wall-clock, don't gate on shared-runner cores
    # "Comparable wall-clock" scaled to the hardware: 8 restarts over
    # min(jobs, cores) effective workers, with 2x scheduling slack and a
    # flat allowance for pool startup (fork + shipping coefficients).
    # On a 4+-core box this demands real concurrency (~2x single + eps);
    # on a 1-core box it still caps portfolio overhead near-serial.
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        cores = os.cpu_count() or 1
    effective_workers = max(1, min(4, cores))
    budget = (8 / effective_workers) * single_wall * 2.0 + 2.0
    assert portfolio_wall <= budget, (
        f"portfolio {portfolio_wall:.2f}s > budget {budget:.2f}s "
        f"({effective_workers} effective workers)"
    )


def test_portfolio_deterministic_across_worker_counts(large_coefficients):
    """jobs=1 and jobs=4 agree bit for bit on the large instance too."""
    results = [
        run_portfolio(
            large_coefficients, 4,
            SaOptions(seed=3, restarts=4, jobs=jobs, inner_loops=5,
                      max_outer_loops=3),
        )
        for jobs in (1, 4)
    ]
    assert results[0].objective6 == results[1].objective6
    assert results[0].restart_objectives == results[1].restart_objectives
    np.testing.assert_array_equal(results[0].x, results[1].x)
    np.testing.assert_array_equal(results[0].y, results[1].y)


def test_queue_backend_parity_and_overhead(large_coefficients):
    """The queue backend (JSON envelopes + worker loop) returns the
    bitwise-identical best and its serialisation overhead stays a small
    multiple of the serial backend.

    Measured as a same-box ratio with retries (the envelope path
    re-parses the instance and rebuilds coefficients per restart — the
    price of a transport-neutral wire format; ~2x on this short-anneal
    configuration, shrinking as anneals grow); no wall-clock or
    parallelism claims.
    """
    options = SaOptions(seed=3, restarts=3, inner_loops=5, max_outer_loops=3)

    threshold = 8.0  # generous: measured ~2x; gate the order of magnitude
    best_ratio = float("inf")
    best_walls = (float("nan"), float("nan"))
    for _ in range(3):  # retry: absorb transient runner noise
        serial_started = time.perf_counter()
        serial = run_portfolio(large_coefficients, 4, options, backend="serial")
        serial_wall = time.perf_counter() - serial_started

        queue_started = time.perf_counter()
        queued = run_portfolio(large_coefficients, 4, options, backend="queue")
        queue_wall = time.perf_counter() - queue_started
        if queue_wall / serial_wall < best_ratio:
            best_ratio = queue_wall / serial_wall
            best_walls = (serial_wall, queue_wall)
        if best_ratio <= threshold:
            break

    print(
        f"\nrndAt64x100, |S|=4, 3 restarts: serial {best_walls[0]:.2f}s, "
        f"queue {best_walls[1]:.2f}s (envelope overhead {best_ratio:.2f}x)"
    )
    assert queued.objective6 == serial.objective6
    assert queued.best_restart == serial.best_restart
    assert queued.restart_objectives == serial.restart_objectives
    np.testing.assert_array_equal(queued.x, serial.x)
    np.testing.assert_array_equal(queued.y, serial.y)
    assert best_ratio <= threshold, (
        f"queue envelope overhead {best_ratio:.1f}x > {threshold:.0f}x serial"
    )


def _bench(function, rounds: int = 15) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - started)
    return best


def test_balance_aware_subsolve_speedup(large_coefficients):
    """Fast lambda=0.5 placement >= 3x the loop path, bitwise equal.

    Measures the placement stage on the precomputed-input path (what the
    annealer feeds from the incremental evaluator), so the shared dense
    matmuls don't dilute the comparison.
    """
    num_sites = 4
    fast = SubproblemSolver(large_coefficients, num_sites)
    loop = SubproblemSolver(large_coefficients, num_sites, vectorized=False)
    rng = np.random.default_rng(0)
    x = random_transaction_placement(
        large_coefficients.num_transactions, num_sites, rng
    )
    xs = x.astype(float)
    k = fast.lam * (large_coefficients.c1 @ xs + large_coefficients.c2[:, None])
    load_weight = large_coefficients.c3 @ xs + large_coefficients.c4[:, None]
    forced = fast.forced_y(x)
    y = fast.optimize_y_greedy(x, k=k, load_weight=load_weight, forced=forced)
    np.testing.assert_array_equal(
        y, loop.optimize_y_greedy(x, k=k, load_weight=load_weight, forced=forced)
    )
    ys = y.astype(float)
    cost = fast.lam * (large_coefficients.c1.T @ ys)
    read_load = large_coefficients.c3.T @ ys
    missing = fast.phi.T @ (1.0 - ys)
    static_load = large_coefficients.c4 @ ys
    np.testing.assert_array_equal(
        fast.optimize_x_greedy(
            y, cost=cost, read_load=read_load, missing=missing,
            static_load=static_load,
        ),
        loop.optimize_x_greedy(
            y, cost=cost, read_load=read_load, missing=missing,
            static_load=static_load,
        ),
    )

    threshold = 2.0 if os.environ.get("CI") else 3.0
    best_speedup = 0.0
    for _ in range(3):  # retry: absorb transient runner noise
        fast_time = _bench(
            lambda: (
                fast.optimize_y_greedy(
                    x, k=k, load_weight=load_weight, forced=forced
                ),
                fast.optimize_x_greedy(
                    y, cost=cost, read_load=read_load, missing=missing,
                    static_load=static_load,
                ),
            )
        )
        loop_time = _bench(
            lambda: (
                loop.optimize_y_greedy(
                    x, k=k, load_weight=load_weight, forced=forced
                ),
                loop.optimize_x_greedy(
                    y, cost=cost, read_load=read_load, missing=missing,
                    static_load=static_load,
                ),
            )
        )
        best_speedup = max(best_speedup, loop_time / fast_time)
        if best_speedup >= threshold:
            break
    print(
        f"\nlambda=0.5 sub-solves on rndAt64x100: loop {loop_time * 1e3:.2f}ms, "
        f"fast {fast_time * 1e3:.2f}ms, speedup {best_speedup:.1f}x"
    )
    assert best_speedup >= threshold


def test_sweep_level_linearization_cache_speedup():
    """Cached 10-point sweep builds measurably faster, identical arrays."""
    instance = named_instance("rndAt8x15")
    coefficient_cache = CoefficientCache(instance)
    penalties = [1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0, 64.0, 128.0]
    points = [
        coefficient_cache.coefficients(CostParameters(network_penalty=penalty))
        for penalty in penalties
    ]

    def build_all(cache):
        return [build_linearized_model(coefficients, 3, cache=cache) for coefficients in points]

    # Equality of every sweep point against the uncached build.
    cache = LinearizationCache()
    for cached, coefficients in zip(build_all(cache), points):
        plain = build_linearized_model(coefficients, 3)
        a = cached.model.to_standard_arrays()
        b = plain.model.to_standard_arrays()
        np.testing.assert_array_equal(a.objective, b.objective)
        assert (a.matrix != b.matrix).nnz == 0
        np.testing.assert_array_equal(a.rhs, b.rhs)
    assert cache.hits == len(penalties) - 1

    threshold = 1.2 if os.environ.get("CI") else 1.5
    best_speedup = 0.0
    for _ in range(3):
        uncached_time = _bench(lambda: build_all(None), rounds=3)
        cached_time = _bench(lambda: build_all(LinearizationCache()), rounds=3)
        best_speedup = max(best_speedup, uncached_time / cached_time)
        if best_speedup >= threshold:
            break
    print(
        f"\n10-point penalty sweep on rndAt8x15: uncached "
        f"{uncached_time * 1e3:.1f}ms, cached {cached_time * 1e3:.1f}ms, "
        f"speedup {best_speedup:.1f}x"
    )
    assert best_speedup >= threshold
