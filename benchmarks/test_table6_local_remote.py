"""Table 6: local (p = 0) vs remote (p > 0) partition placement.

Expected shape (paper): only updates cause inter-site transfer, so
write-heavy instances (the u50 variants) benefit most from local
placement — rndAt8x15u50 was ~33% cheaper locally; read-mostly
instances barely move.
"""

from repro.bench.tables import table6

from benchmarks.conftest import run_and_print


def test_table6_local_remote(benchmark, profile):
    table = run_and_print(benchmark, table6, profile)
    rows = {(row["instance"], row["|S|"]): row for row in table.rows}

    # S=1: local == remote exactly (no transfer possible).
    s1 = rows[("TPC-C v5", 1)]
    assert s1["local QP"] == s1["remote QP"]

    # Local placement never costs more than remote (QP, exact).
    for row in table.rows:
        assert row["local QP"] <= row["remote QP"] * 1.02, row["instance"]

    # The 50%-update instances benefit far more from local placement
    # than their 10%-update counterparts.
    gain_u50 = rows[("rndAt8x15u50", 2)]["local/remote %"]
    gain_u10 = rows[("rndAt8x15", 2)]["local/remote %"]
    assert gain_u50 < gain_u10

    u50_rows = [row for row in table.rows if "u50" in row["instance"]]
    assert min(row["local/remote %"] for row in u50_rows) <= 95
