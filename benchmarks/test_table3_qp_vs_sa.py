"""Table 3: the QP solver vs the SA heuristic.

Expected shape (paper): the SA solver is far faster on large instances
while the QP wins or ties on small ones; rndA instances gain 25-85%
cost reduction, rndB instances little or none; TPC-C gains ~25-40%.
"""

from repro.bench.tables import table3

from benchmarks.conftest import run_and_print


def _cost(value):
    """Parse the paper-style cost cell ('123', '(123)' or 't/o')."""
    text = str(value)
    if text == "t/o":
        return None
    return float(text.strip("()"))


def test_table3_qp_vs_sa(benchmark, profile):
    table = run_and_print(benchmark, table3, profile)
    rows = {(row["instance"], row["|S|"]): row for row in table.rows}

    # TPC-C: both solvers cut >= 20% vs single site at every S.
    for num_sites in (2, 3, 4):
        row = rows[("TPC-C v5", num_sites)]
        qp_cost = _cost(row["QP cost"])
        assert qp_cost is not None
        assert qp_cost < 0.8 * row["S=1"]
        assert row["SA cost"] < 0.85 * row["S=1"]

    # rndA rows reduce substantially; rndB rows reduce little.
    for row in table.rows:
        name = row["instance"]
        if name.startswith("rndAt"):
            assert row["SA cost"] < 0.8 * row["S=1"], name
        elif name.startswith("rndBt"):
            assert row["SA cost"] <= 1.1 * row["S=1"], name

    # SA is never catastrophically worse than QP where QP finished.
    for row in table.rows:
        qp_cost = _cost(row["QP cost"])
        if qp_cost is not None:
            assert row["SA cost"] <= qp_cost * 1.5, row["instance"]
