"""Bench smoke: the workload-compression ratio/gap curve.

Drives the ``compression`` target end to end (runner dispatch included)
and asserts the layer's headline contract on the duplicate-heavy
instances: >= 5x transaction-count reduction with *zero* objective gap
in the lossless tier, measured lossy gap within its reported bound, and
a machine-readable ``BENCH_compression.json`` perf-trajectory artifact.
"""

from __future__ import annotations

import json

from benchmarks.conftest import run_and_print
from repro.bench.compression import ARTIFACT_ENV_VAR, ARTIFACT_NAME
from repro.bench.runner import run_table


def run_table_target(profile):
    return run_table("compression", profile)


def test_bench_compression_table(benchmark, profile, tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_ENV_VAR, str(tmp_path))
    table = run_and_print(benchmark, run_table_target, profile)

    by_key = {(row["instance"], row["tier"], row["tol"]): row
              for row in table.rows}
    # Headline: the exact-duplicate instance compresses >= 5x with a
    # bit-identical objective in the lossless tier.
    direct = by_key[("rndDupAt8x120", "off", 0.0)]
    lossless = by_key[("rndDupAt8x120", "lossless", 0.0)]
    assert lossless["ratio"] >= 5.0
    assert lossless["objective"] == direct["objective"]
    assert lossless["gap %"] == 0.0
    # Coefficient-array memory shrinks along with the transaction count.
    assert lossless["coeff MB"] < direct["coeff MB"] / 5.0

    # Lossy tier: monotone in tolerance, measured gap within the bound.
    for row in table.rows:
        if row["tier"] == "lossy":
            assert row["gap %"] <= row["bound %"] + 1e-9

    artifact = json.loads((tmp_path / ARTIFACT_NAME).read_text())
    assert artifact["bench"] == "compression"
    assert len(artifact["rows"]) == len(table.rows)
    for row in artifact["rows"]:
        assert row["gap"] <= row["bound"] + 1e-9


def test_lossy_tier_merges_more_under_larger_tolerance(profile, tmp_path,
                                                       monkeypatch):
    monkeypatch.setenv(ARTIFACT_ENV_VAR, str(tmp_path))
    table = run_table("compression", profile)
    jittered = [row for row in table.rows
                if row["instance"] == "rndDupAt8x120j"]
    ratios = {(row["tier"], row["tol"]): row["ratio"] for row in jittered}
    # Near-duplicates are invisible to the lossless tier but merge under
    # a budget; a larger budget merges at least as much.
    assert ratios[("lossy", 0.02)] >= ratios[("lossless", 0.0)]
    assert ratios[("lossy", 0.1)] >= ratios[("lossy", 0.02)]
