"""Micro-benchmarks of the hot components (multi-round timings).

Unlike the table regenerations these use pytest-benchmark's statistics
properly: many rounds over the pure in-memory kernels, giving a
regression baseline for the cost evaluator, the SA sub-solvers and the
model builders.
"""

import numpy as np
import pytest

from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.costmodel.evaluator import SolutionEvaluator
from repro.instances.library import named_instance
from repro.instances.tpcc import tpcc_instance
from repro.qp.linearize import build_linearized_model
from repro.sa.state import random_transaction_placement
from repro.sa.subsolve import SubproblemSolver


@pytest.fixture(scope="module")
def tpcc_coefficients():
    return build_coefficients(tpcc_instance(), CostParameters())


@pytest.fixture(scope="module")
def large_coefficients():
    return build_coefficients(named_instance("rndAt16x100"), CostParameters())


def _solution(coefficients, num_sites, seed=0):
    rng = np.random.default_rng(seed)
    x = random_transaction_placement(
        coefficients.num_transactions, num_sites, rng
    )
    y = SubproblemSolver(coefficients, num_sites).optimize_y_greedy(x)
    return x, y


def test_bench_objective4_tpcc(benchmark, tpcc_coefficients):
    evaluator = SolutionEvaluator(tpcc_coefficients)
    x, y = _solution(tpcc_coefficients, 4)
    cost = benchmark(evaluator.objective4, x, y)
    assert cost > 0


def test_bench_objective6_large(benchmark, large_coefficients):
    evaluator = SolutionEvaluator(large_coefficients)
    x, y = _solution(large_coefficients, 4)
    cost = benchmark(evaluator.objective6, x, y)
    assert cost > 0


def test_bench_optimize_y_greedy_large(benchmark, large_coefficients):
    subsolver = SubproblemSolver(large_coefficients, 4)
    rng = np.random.default_rng(1)
    x = random_transaction_placement(
        large_coefficients.num_transactions, 4, rng
    )
    y = benchmark(subsolver.optimize_y_greedy, x)
    assert y.any()


def test_bench_optimize_x_greedy_large(benchmark, large_coefficients):
    subsolver = SubproblemSolver(large_coefficients, 4)
    _, y = _solution(large_coefficients, 4, seed=2)
    x = benchmark(subsolver.optimize_x_greedy, y)
    assert (x.sum(axis=1) == 1).all()


def test_bench_build_coefficients_tpcc(benchmark):
    instance = tpcc_instance()
    coefficients = benchmark(build_coefficients, instance, CostParameters())
    assert coefficients.num_attributes == 92


def test_bench_build_linearized_model_tpcc(benchmark, tpcc_coefficients):
    linearized = benchmark(build_linearized_model, tpcc_coefficients, 3)
    assert linearized.model.num_variables > 0
