"""Extension: partitioning potential across the OLTP testbed.

The paper's conclusion calls for a library of realistic OLTP instances;
this benchmark runs the paper's algorithms over ours (TPC-C, TATP,
SmallBank, Voter) and reports the cost-reduction potential of each —
the kind of characterisation study the paper says such a library would
enable.

Expected shape: the benefit tracks *narrow access paths over wider
rows*, not raw row width. TPC-C (selective reads of wide Customer/Stock
rows) and Voter (100-row tally scans that read one 4-byte column of the
Votes row) gain a lot; SmallBank (2-column tables — nothing to split)
and TATP (its dominant read fetches the whole wide Subscriber row
anyway) gain little. The same lesson as the paper's rndA/rndB split:
gains need many attributes per table AND few attribute references per
query.
"""

from repro.bench.formatting import BenchTable, render_table
from repro.costmodel.coefficients import build_coefficients
from repro.costmodel.config import CostParameters
from repro.instances.library import named_instance
from repro.partition.assignment import single_site_partitioning
from repro.qp.solver import QpPartitioner
from repro.sa.solver import SaPartitioner

TESTBED = ("tpcc", "tatp", "smallbank", "voter")


def _build_table(profile) -> BenchTable:
    table = BenchTable(
        title="Extension — the OLTP testbed under the paper's algorithms "
        "(2 sites, p=8)",
        columns=["instance", "|A|", "|T|", "S=1", "QP", "SA", "QP red%",
                 "replicas/attr"],
    )
    parameters = CostParameters()
    for name in TESTBED:
        instance = named_instance(name)
        coefficients = build_coefficients(instance, parameters)
        baseline = single_site_partitioning(coefficients).objective
        qp = QpPartitioner(coefficients, 2).solve(
            time_limit=profile.qp_time_limit, backend="scipy"
        )
        sa = SaPartitioner(
            coefficients, 2, options=profile.sa_for(instance.num_attributes)
        ).solve()
        table.add_row(
            instance=instance.name,
            **{"|A|": instance.num_attributes,
               "|T|": instance.num_transactions,
               "S=1": round(baseline),
               "QP": round(qp.objective),
               "SA": round(sa.objective),
               "QP red%": round(100.0 * (1 - qp.objective / baseline), 1),
               "replicas/attr": round(qp.replication_factor, 2)},
        )
    return table


def test_extension_testbed(benchmark, profile):
    table = benchmark.pedantic(_build_table, args=(profile,), rounds=1,
                               iterations=1)
    print()
    print(render_table(table))
    rows = {row["instance"]: row for row in table.rows}

    # Every instance: QP never worse than single-site by more than the
    # load-balance tie margin, and SA never below the QP floor.
    for row in table.rows:
        assert row["QP"] <= row["S=1"] * 1.05
        assert row["QP"] <= row["SA"] * 1.02

    # Narrow access paths over wider rows win big (TPC-C, Voter);
    # whole-row reads (TATP) and 2-column tables (SmallBank) do not.
    assert rows["TPC-C v5"]["QP red%"] > 15
    assert rows["Voter"]["QP red%"] > 15
    assert rows["SmallBank"]["QP red%"] < 10
    assert rows["TATP"]["QP red%"] < 20
