"""Legacy setup shim.

The sandboxed environment has no `wheel` package, so PEP 660 editable
installs fail; this file enables pip's legacy `setup.py develop` path
(`pip install -e . --no-use-pep517 --no-build-isolation`).
"""
from setuptools import setup

setup()
