"""Batched serving with the unified advisor API.

Simulates what a partitioning service sees: a queue of heterogeneous
requests — different cost parameters, replication modes and strategies,
some arriving as JSON — all served through one long-lived
:class:`~repro.api.Advisor` that shares coefficient products and MIP
skeletons across them, with an ``"auto"`` strategy that routes each
request to the QP or SA solver by model size.

Run with:  python examples/advisor_service.py
"""

from repro import Advisor, CostParameters, SolveRequest, tpcc_instance


def build_queue() -> list[SolveRequest]:
    instance = tpcc_instance()
    queue: list[SolveRequest] = []
    # A penalty sweep, alternating replicated and disjoint requests.
    for penalty in (1.0, 2.0, 4.0, 8.0):
        for allow_replication in (True, False):
            queue.append(SolveRequest(
                instance,
                num_sites=2,
                parameters=CostParameters(network_penalty=penalty),
                allow_replication=allow_replication,
                strategy="qp",
                options={"backend": "scipy"},
                time_limit=30,
            ))
    # "auto" picks QP or SA from the model-size estimate.
    queue.append(SolveRequest(instance, num_sites=3, strategy="auto",
                              time_limit=30))
    # Requests round-trip through JSON, so they can arrive over the wire.
    wire = SolveRequest(
        instance, num_sites=3, strategy="sa-portfolio",
        options={"restarts": 4, "inner_loops": 10, "max_outer_loops": 20},
    ).to_json()
    queue.append(SolveRequest.from_json(wire))
    return queue


def main() -> None:
    advisor = Advisor()
    reports = advisor.advise_many(build_queue(), master_seed=7)

    print(f"{'strategy':>16}  {'p':>4}  {'repl':>4}  {'objective':>10}  "
          f"{'time s':>6}")
    for report in reports:
        request = report.request
        print(f"{report.strategy:>16}  "
              f"{request.parameters.network_penalty:>4.0f}  "
              f"{'yes' if request.allow_replication else 'no':>4}  "
              f"{report.objective:>10.0f}  {report.wall_time:>6.2f}")

    stats = advisor.cache_stats()
    print(f"\nserved {advisor.requests_served} requests; "
          f"coefficient cache {stats['coefficient_hits']} hits / "
          f"{stats['coefficient_misses']} misses; "
          f"linearization cache {stats['linearization_hits']} hits / "
          f"{stats['linearization_misses']} misses")


if __name__ == "__main__":
    main()
