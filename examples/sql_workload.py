"""Partition a workload written as annotated SQL.

Shows the mini-SQL front end: CREATE TABLE text for the schema, DML
templates with `-- transaction/name/rows/freq` annotations for the
workload. UPDATEs are split per the paper's Section-5.2 convention
automatically.

Run with:  python examples/sql_workload.py
"""

from repro import (
    CostParameters,
    SolveRequest,
    advise,
    build_coefficients,
    single_site_partitioning,
)
from repro.partition.layout import layout_summary
from repro.sqlio import load_instance_from_sql

SCHEMA_SQL = """
CREATE TABLE accounts (
    id        INT,
    owner     VARCHAR(32),
    balance   DECIMAL(14,2),
    opened    TIMESTAMP,
    kyc_blob  VARCHAR(800)
);
CREATE TABLE transfers (
    id        BIGINT,
    src       INT,
    dst       INT,
    amount    DECIMAL(14,2),
    executed  TIMESTAMP,
    memo      VARCHAR(120)
);
CREATE TABLE audit_log (
    id        BIGINT,
    account   INT,
    action    CHAR(12),
    at        TIMESTAMP,
    details   VARCHAR(300)
);
"""

WORKLOAD_SQL = """
-- transaction Transfer
-- name lockAccounts freq 50 rows accounts=2
SELECT id, balance FROM accounts WHERE id = ?;
-- name debit freq 50 rows accounts=2
UPDATE accounts SET balance = balance + ? WHERE id = ?;
-- name record freq 50
INSERT INTO transfers (id, src, dst, amount, executed, memo)
VALUES (?, ?, ?, ?, ?, ?);
-- name log freq 50
INSERT INTO audit_log VALUES (?, ?, ?, ?, ?);

-- transaction Statement
-- name history freq 5 rows transfers=30
SELECT t.src, t.dst, t.amount, t.executed, t.memo
FROM transfers t WHERE t.src = ? ORDER BY t.executed;
-- name header freq 5
SELECT id, owner, balance FROM accounts WHERE id = ?;

-- transaction Compliance
-- name review freq 1 rows accounts=20
SELECT id, owner, kyc_blob FROM accounts WHERE opened > ?;
-- name trail freq 1 rows audit_log=100
SELECT account, action, at, details FROM audit_log WHERE account = ?;
"""


def main() -> None:
    instance = load_instance_from_sql(SCHEMA_SQL, WORKLOAD_SQL, name="bank")
    parameters = CostParameters()
    coefficients = build_coefficients(instance, parameters)
    baseline = single_site_partitioning(coefficients)

    result = advise(SolveRequest(
        instance, num_sites=2, parameters=parameters,
        strategy="qp", time_limit=30,
    )).result
    reduction = 100 * (1 - result.objective / baseline.objective)
    print(f"instance: {instance.name} "
          f"(|A|={instance.num_attributes}, |T|={instance.num_transactions})")
    print(f"single-site: {baseline.objective:.0f}   "
          f"two sites: {result.objective:.0f}   reduction: {reduction:.1f}%")
    print()
    print(layout_summary(result))
    print()
    # The hot Transfer path and the cold Compliance scans separate:
    for name in ("Transfer", "Statement", "Compliance"):
        print(f"{name:>11} runs on site {result.transaction_site(name) + 1}")
    kyc_sites = result.attribute_sites("accounts.kyc_blob")
    print(f"accounts.kyc_blob (800 B, compliance-only) on sites "
          f"{[s + 1 for s in kyc_sites]}")


if __name__ == "__main__":
    main()
