"""Partition the full TPC-C benchmark, reproducing the paper's headline.

Reproduces the Section 5 story: a ~25-40% cost reduction at two sites,
almost nothing more from further sites (Table 5), a concrete three-site
layout (Table 4), and the replication-vs-disjoint comparison.

Run with:  python examples/tpcc_advisor.py
"""

from repro import (
    CostParameters,
    build_coefficients,
    render_layout,
    single_site_partitioning,
    tpcc_instance,
)
from repro.qp import QpPartitioner


def main() -> None:
    instance = tpcc_instance()
    parameters = CostParameters()  # p = 8, cost-dominant blending
    coefficients = build_coefficients(instance, parameters)

    baseline = single_site_partitioning(coefficients)
    print(f"TPC-C |A|={instance.num_attributes}, |T|={instance.num_transactions}")
    print(f"single-site cost: {baseline.objective:.0f}\n")

    print(f"{'sites':>5}  {'replicated':>10}  {'disjoint':>10}  "
          f"{'reduction':>9}  {'ratio':>6}")
    results = {}
    for num_sites in (2, 3, 4):
        replicated = QpPartitioner(coefficients, num_sites).solve(
            time_limit=60, backend="scipy"
        )
        disjoint = QpPartitioner(
            coefficients, num_sites, allow_replication=False
        ).solve(time_limit=60, backend="scipy")
        results[num_sites] = replicated
        reduction = 100 * (1 - replicated.objective / baseline.objective)
        ratio = 100 * replicated.objective / disjoint.objective
        print(f"{num_sites:>5}  {replicated.objective:>10.0f}  "
              f"{disjoint.objective:>10.0f}  {reduction:>8.1f}%  {ratio:>5.0f}%")

    print("\nThree-site layout (the paper's Table 4):\n")
    print(render_layout(results[3]))


if __name__ == "__main__":
    main()
