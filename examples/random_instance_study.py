"""Study which workload characteristics make partitioning pay off.

Generates instances from the paper's rndA class (many attributes per
table, few references per query — big win expected) and rndB class
(few attributes, many references — little win expected), runs the SA
solver and all baselines, and prints the comparison. Mirrors the
Table 1 / Table 3 analysis on a small budget.

Run with:  python examples/random_instance_study.py
"""

from repro import CostParameters, build_coefficients, single_site_partitioning
from repro.baselines import (
    affinity_partitioning,
    greedy_binpack_partitioning,
    hill_climb_partitioning,
)
from repro.instances import named_instance
from repro.sa import SaOptions, SaPartitioner

SOLVERS = (
    ("affinity", affinity_partitioning),
    ("binpack", greedy_binpack_partitioning),
    ("hill-climb", hill_climb_partitioning),
)


def main() -> None:
    parameters = CostParameters()
    options = SaOptions(inner_loops=10, max_outer_loops=20, seed=7)
    print(f"{'instance':<12} {'|A|':>5} {'S=1':>9} {'SA':>9} {'red%':>6} "
          + "".join(f"{name:>11}" for name, _ in SOLVERS))
    for name in ("rndAt8x15", "rndAt16x15", "rndBt8x15", "rndBt16x15"):
        instance = named_instance(name)
        coefficients = build_coefficients(instance, parameters)
        baseline = single_site_partitioning(coefficients).objective
        sa = SaPartitioner(coefficients, 3, options=options).solve()
        row = (f"{name:<12} {instance.num_attributes:>5} {baseline:>9.0f} "
               f"{sa.objective:>9.0f} "
               f"{100 * (1 - sa.objective / baseline):>5.1f}%")
        for _, solver in SOLVERS:
            result = solver(coefficients, 3)
            row += f"{result.objective:>11.0f}"
        print(row)
    print("\nexpected shape: rndA rows show large reductions, rndB rows "
          "almost none, and SA beats the classic baselines.")


if __name__ == "__main__":
    main()
