"""Trace-driven partitioning: estimate statistics, then re-partition.

The paper assumes workload statistics are known. This example closes
the loop: start from the TATP benchmark with guessed statistics, feed
the advisor a "production trace" whose access skew differs from the
guess (subscribers hammer GET_ACCESS_DATA, nobody updates locations),
re-estimate ``f_q`` / ``n_{a,q}`` from the trace, and watch the
recommended partitioning change.

Run with:  python examples/trace_driven_advisor.py
"""

import numpy as np

from repro import (
    Advisor,
    CostParameters,
    SolveRequest,
    build_coefficients,
    single_site_partitioning,
)
from repro.instances import tatp_instance
from repro.stats import QueryEvent, TraceCollector, reestimate_instance


def synthesize_trace(instance, rng: np.random.Generator) -> TraceCollector:
    """A skewed production trace: 70% GetAccessData, 25% reads of the
    subscriber row, 5% call-forwarding churn; location updates died."""
    mix = {
        "GetAccessData.get": 70,
        "GetSubscriberData.get": 20,
        "GetNewDestination.join": 5,
        "InsertCallForwarding.lookup": 2,
        "InsertCallForwarding.insert": 2,
        "DeleteCallForwarding.lookup": 1,
        "DeleteCallForwarding.delete": 1,
    }
    collector = TraceCollector()
    by_name = {query.name: query for query in instance.queries}
    for name, weight in mix.items():
        query = by_name[name]
        for _ in range(weight * 10):
            rows = {
                table: max(1, int(rng.poisson(query.rows_for(table))))
                for table in query.tables
            }
            collector.record(name, rows)
    return collector


def describe(result, baseline, label):
    reduction = 100 * (1 - result.objective / baseline)
    print(f"{label:<22} objective {result.objective:>10.0f}  "
          f"(reduction {reduction:.1f}% vs single site)")
    for name in ("GetSubscriberData", "GetAccessData", "UpdateLocation"):
        print(f"   {name:<20} -> site {result.transaction_site(name) + 1}")


def main() -> None:
    rng = np.random.default_rng(7)
    parameters = CostParameters()
    advisor = Advisor()  # one advisor serves both solves
    guessed = tatp_instance()
    baseline = single_site_partitioning(
        build_coefficients(guessed, parameters)
    ).objective

    print("=== partitioning with the guessed (spec-mix) statistics ===")
    before = advisor.advise(SolveRequest(
        guessed, num_sites=2, parameters=parameters,
        strategy="qp", time_limit=30,
    )).result
    describe(before, baseline, "spec-mix advisor")

    print("\n=== re-estimating statistics from the production trace ===")
    collector = synthesize_trace(guessed, rng)
    print(f"trace: {collector.total_events} query executions")
    traced = reestimate_instance(
        guessed,
        [QueryEvent(name, stats.mean_rows)
         for name, stats in collector.aggregate().items()
         for _ in range(stats.executions)],
    )
    traced_baseline = single_site_partitioning(
        build_coefficients(traced, parameters)
    ).objective
    after = advisor.advise(SolveRequest(
        traced, num_sites=2, parameters=parameters,
        strategy="qp", time_limit=30,
    )).result
    describe(after, traced_baseline, "trace-driven advisor")

    moved_transactions = sum(
        1
        for transaction in guessed.transactions
        if before.transaction_site(transaction.name)
        != after.transaction_site(transaction.name)
    )
    moved_attributes = sum(
        1
        for attribute in guessed.attributes
        if before.attribute_sites(attribute.qualified_name)
        != after.attribute_sites(attribute.qualified_name)
    )
    print(f"\nonce the real mix was known, {moved_transactions} of "
          f"{guessed.num_transactions} transactions and {moved_attributes} "
          f"of {guessed.num_attributes} attribute placements changed.")


if __name__ == "__main__":
    main()
