"""Online re-partitioning: watch a deployed layout survive — then lose.

The paper partitions from scratch; a production advisor starts from a
layout that is *already deployed* and must decide whether re-shuffling
attributes is worth the one-time move cost.  This example closes that
loop with ``Advisor.readvise`` on a small web-shop workload whose
optimal layout genuinely depends on the query mix:

1. stream a user-write-heavy trace through a decayed collector,
   partition under those statistics and deploy the result as the
   incumbent ``CurrentLayout``,
2. re-advise while the mix is unchanged — the re-solve cannot beat the
   incumbent, so the verdict is **stay**,
3. hit the shop with a flash crowd (order writes explode, user writes
   die): the decayed statistics forget the old mix within a few
   half-lives, the incumbent's site loads go badly lopsided, and the
   verdict flips to **migrate** — the re-solve drags ``Users``/
   ``Orders`` attributes across sites and the steady-state savings
   dwarf the move bytes.  Price moving data prohibitively, though, and
   the migration-aware objective pins the solver to the incumbent:
   **stay** again.

Run with:  python examples/trace_driven_advisor.py
"""

import numpy as np

from repro import Advisor, CostParameters, SolveRequest
from repro.model.instance import ProblemInstance
from repro.model.schema import SchemaBuilder
from repro.model.workload import Query, Transaction, Workload
from repro.partition import CurrentLayout
from repro.stats import DecayedTraceCollector, reestimate_from_statistics

#: Steady state: user-profile churn dominates, reports are rare.
STEADY_MIX = {
    "UserOps.get": 30,
    "UserOps.update": 45,
    "OrderOps.get": 12,
    "OrderOps.update": 3,
    "Report.join": 10,
}

#: Flash crowd: a sale — order traffic explodes, profile churn dies.
FLASH_MIX = {
    "UserOps.get": 12,
    "UserOps.update": 3,
    "OrderOps.get": 30,
    "OrderOps.update": 45,
    "Report.join": 10,
}


def shop_instance() -> ProblemInstance:
    """Two tables, two writers, one cross-table report.

    ``Report.join`` reads the written columns of *both* tables, so the
    optimal placement of ``Users.prefs`` / ``Orders.status`` follows
    whichever writer currently dominates — exactly the kind of layout
    a frequency drift flips.
    """
    schema = (
        SchemaBuilder("shop")
        .table("Users", key=8, name=40, prefs=200)
        .table("Orders", key=8, item=40, status=160)
        .build()
    )
    workload = Workload(
        [
            Transaction("UserOps", (
                Query.read("UserOps.get", ["Users.key", "Users.name"]),
                Query.write("UserOps.update", ["Users.prefs"], rows=2.0),
            )),
            Transaction("OrderOps", (
                Query.read("OrderOps.get", ["Orders.key", "Orders.item"]),
                Query.write("OrderOps.update",
                            ["Orders.status"], rows=2.0),
            )),
            Transaction("Report", (
                Query.read("Report.join",
                           ["Users.prefs", "Orders.status"], rows=5.0),
            )),
        ],
        name="shop-load",
    )
    return ProblemInstance(schema, workload, name="shop")


def stream_mix(collector, instance, mix, *, start, events, rng):
    """Feed ``events`` draws from ``mix`` into the decayed collector."""
    by_name = {query.name: query for query in instance.queries}
    names = list(mix)
    weights = np.array([mix[name] for name in names], dtype=float)
    weights /= weights.sum()
    t = start
    for name in rng.choice(names, size=events, p=weights):
        query = by_name[name]
        rows = {
            table: max(1.0, float(rng.poisson(query.rows_for(table))))
            for table in query.tables
        }
        collector.observe(name, rows, at=t)
        t += 1.0
    return t


def verdict(report, label):
    m = report.migration
    print(f"{label:<30} -> {m.recommendation.upper():7}  "
          f"stay {m.stay_cost:>7.0f} vs migrate {m.total_cost:>7.0f} "
          f"(re-solve {m.solve_cost:.0f} + weighted move {m.move_cost:.0f})")
    return m


def main() -> None:
    rng = np.random.default_rng(7)
    # Balanced blending: lopsided site loads hurt as much as transfer.
    parameters = CostParameters(load_balance_lambda=0.5)
    advisor = Advisor()
    instance = shop_instance()

    # Half-life of 300 events: a few thousand events of a new mix make
    # the collector forget the old one.
    collector = DecayedTraceCollector(half_life=300.0)
    now = stream_mix(collector, instance, STEADY_MIX,
                     start=0.0, events=1500, rng=rng)

    print("=== deploy: partition under the steady (user-heavy) mix ===")
    steady_instance = reestimate_from_statistics(
        instance, collector.statistics()
    )
    deployed = advisor.advise(SolveRequest(
        steady_instance, num_sites=2, parameters=parameters,
        strategy="qp", time_limit=30,
    )).result
    incumbent = CurrentLayout.from_result(deployed)
    for name, sites in incumbent.placements.items():
        print(f"  {name:<14} -> site {'+'.join(str(s + 1) for s in sites)}")

    def readvise(cost, label):
        return verdict(advisor.readvise(SolveRequest(
            instance, num_sites=2, parameters=parameters,
            strategy="sa", seed=11,
            current_layout=incumbent, migration_cost=cost,
        ), trace=collector), label)

    print("\n=== steady state: the trace still matches the deployment ===")
    steady = readvise(1.0, "steady mix, moves at 1/byte")

    print("\n=== flash crowd: order traffic explodes mid-trace ===")
    stream_mix(collector, instance, FLASH_MIX,
               start=now, events=3000, rng=rng)
    cheap = readvise(1.0, "drifted mix, moves at 1/byte")
    pricey = readvise(20_000.0, "drifted mix, moves at 20k/byte")

    print(f"\nsummary: under the steady mix the incumbent held "
          f"({steady.recommendation}); the flash crowd left "
          f"{cheap.net_benefit:.0f} on the table, so cheap moves "
          f"re-partition ({cheap.recommendation}) — but priced at "
          f"20k/byte the same drift is not worth the shuffle "
          f"({pricey.recommendation}).")


if __name__ == "__main__":
    main()
