"""Quickstart: define a schema + workload, partition it, inspect costs.

Run with:  python examples/quickstart.py
"""

from repro import (
    Advisor,
    CostParameters,
    ProblemInstance,
    Query,
    SchemaBuilder,
    SolveRequest,
    Transaction,
    Workload,
    build_coefficients,
    render_layout,
    single_site_partitioning,
    split_update,
)


def build_instance() -> ProblemInstance:
    """A small web-shop: wide user profiles, a hot orders path."""
    schema = (
        SchemaBuilder("shop")
        .table(
            "Users",
            id=4, email=32, password_hash=32, display_name=24,
            bio=400, avatar=200, last_login=8,
        )
        .table("Orders", id=4, user_id=4, total=8, status=2, created=8)
        .table("Items", order_id=4, sku=8, quantity=4, price=8)
        .build()
    )

    login = Transaction(
        "Login",
        (
            Query.read("Login.find", ["Users.id", "Users.email",
                                      "Users.password_hash"]),
            *split_update(
                "Login.touch",
                read_attributes=["Users.id"],
                written_attributes=["Users.last_login"],
            ),
        ),
    )
    checkout = Transaction(
        "Checkout",
        (
            Query.read("Checkout.cart", ["Items.order_id", "Items.sku",
                                         "Items.quantity", "Items.price"],
                       rows=10.0),
            Query.write("Checkout.order", ["Orders.id", "Orders.user_id",
                                           "Orders.total", "Orders.status",
                                           "Orders.created"]),
            Query.write("Checkout.items", ["Items.order_id", "Items.sku",
                                           "Items.quantity", "Items.price"],
                        rows=10.0),
        ),
    )
    profile = Transaction(
        "ProfilePage",
        (
            Query.read(
                "ProfilePage.load",
                ["Users.id", "Users.display_name", "Users.bio", "Users.avatar"],
            ),
            Query.read("ProfilePage.orders",
                       ["Orders.id", "Orders.user_id", "Orders.total",
                        "Orders.status"], rows=10.0),
        ),
    )
    workload = Workload([login, checkout, profile], name="shop-load")
    return ProblemInstance(schema, workload, name="web-shop")


def main() -> None:
    instance = build_instance()
    parameters = CostParameters()  # p = 8 (10-gigabit network)
    coefficients = build_coefficients(instance, parameters)

    baseline = single_site_partitioning(coefficients)
    print(f"single-site cost        : {baseline.objective:.0f} bytes/unit")

    # One Advisor serves every request and shares its caches between them.
    advisor = Advisor()
    sa = advisor.advise(SolveRequest(
        instance, num_sites=2, parameters=parameters, strategy="sa", seed=0,
    )).result
    print(f"SA  (2 sites)           : {sa.objective:.0f} "
          f"({100 * (1 - sa.objective / baseline.objective):.1f}% less)")

    qp = advisor.advise(SolveRequest(
        instance, num_sites=2, parameters=parameters, strategy="qp",
        time_limit=30,
    )).result
    print(f"QP  (2 sites, optimal)  : {qp.objective:.0f} "
          f"({100 * (1 - qp.objective / baseline.objective):.1f}% less)")

    breakdown = qp.breakdown()
    print(f"  reads {breakdown.read_access:.0f} | writes "
          f"{breakdown.write_access:.0f} | transfer {breakdown.transfer:.0f} "
          f"(x{parameters.network_penalty:.0f} penalty)")
    print(f"  replication factor: {qp.replication_factor:.2f} replicas/attribute")
    print()
    print(render_layout(qp))


if __name__ == "__main__":
    main()
