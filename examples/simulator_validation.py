"""Validate the analytic cost model against the execution simulator.

Partitions TPC-C, then replays the workload on an H-store-like
simulator (sites holding row-store table fractions, real byte buffers,
a network shipping replica updates) and compares measured bytes with
the cost model — they match exactly in the paper's accounting mode.
The finer RELEVANT_ATTRIBUTES replay then quantifies how much the
paper's "access all attributes" simplification overestimates writes.

Run with:  python examples/simulator_validation.py
"""

from repro import CostParameters, SolveRequest, WriteAccounting, advise, tpcc_instance
from repro.simulator import WorkloadSimulator


def main() -> None:
    instance = tpcc_instance()
    parameters = CostParameters()
    result = advise(SolveRequest(
        instance, num_sites=3, parameters=parameters,
        strategy="qp", time_limit=60,
    )).result
    breakdown = result.breakdown()

    report = WorkloadSimulator(result).run()
    print("paper accounting (ALL_ATTRIBUTES):")
    print(f"  {'':14}{'cost model':>12}  {'simulated':>12}")
    for label, model_value, simulated in (
        ("reads AR", breakdown.read_access, report.bytes_read),
        ("writes AW", breakdown.write_access, report.bytes_written),
        ("transfer B", breakdown.transfer, report.bytes_transferred),
        ("objective", result.objective, report.objective()),
    ):
        match = "==" if abs(model_value - simulated) < 1e-6 else "!!"
        print(f"  {label:<12}{model_value:>12.0f}  {simulated:>12.0f}  {match}")
    print(f"  network messages: {report.messages}, "
          f"queries executed: {report.queries_executed}")

    exact = WorkloadSimulator(
        result, accounting=WriteAccounting.RELEVANT_ATTRIBUTES
    ).run()
    overestimate = report.bytes_written - exact.bytes_written
    print("\nexact accounting (RELEVANT_ATTRIBUTES):")
    print(f"  writes: {exact.bytes_written:.0f} "
          f"(the paper's mode overestimates by {overestimate:.0f} bytes, "
          f"{100 * overestimate / max(report.bytes_written, 1):.1f}%)")
    print("  -> this is the Section-2.1 trade-off: exact write accounting "
          "would add |A|^2|S| variables to the QP")


if __name__ == "__main__":
    main()
